(** MiniZinc model emitter.

    Renders the synthesis problem in the MiniZinc language, matching the
    paper's CP-MINIZINC artifact (Section 4.2): per-step decision variables
    for opcode and operands, per-permutation state matrices, functional
    transition constraints written with [if-then-else] expressions, and the
    goal/heuristic variants from the paper's ablation. The emitted model is
    self-contained and can be handed to any MiniZinc solver; the in-repo
    {!Model} implements the same semantics natively. *)

val emit : ?opts:Model.options -> len:int -> int -> string
(** [emit ~len n] is the MiniZinc source for a kernel of exactly [len]
    instructions sorting all permutations of [1..n]. *)
