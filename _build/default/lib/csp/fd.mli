(** A small finite-domain constraint solver (CP-MiniZinc analogue).

    Variables carry bitmask domains over [0..62]; constraints are
    propagators invoked on domain change; search is chronological
    backtracking with trailing, first-unassigned variable order and
    ascending value order (MiniZinc's default [input_order; indomain_min]).
    Propagation runs to fixpoint after every decision. *)

type t
type var

val create : unit -> t

val new_var : t -> lo:int -> hi:int -> var
(** Domain [lo..hi]; requires [0 <= lo <= hi <= 62]. *)

val dom_values : t -> var -> int list
val is_fixed : t -> var -> bool

val value : t -> var -> int
(** Value of a fixed variable. Raises [Invalid_argument] otherwise. *)

val post : t -> ?watch:var list -> (t -> bool) -> unit
(** [post t ~watch prop] registers propagator [prop], re-run whenever a
    watched variable's domain shrinks. [prop] returns [false] on
    inconsistency. It runs once immediately at the next propagation. *)

val remove_value : t -> var -> int -> bool
(** Prune one value; [false] if the domain wiped out. For use inside
    propagators. *)

val assign : t -> var -> int -> bool
(** Restrict to a single value; [false] on wipeout. *)

val solve : ?on_solution:(t -> bool) -> ?node_limit:int -> t -> bool option
(** Depth-first search. [on_solution] is called on every full assignment and
    returns [true] to stop ([false] continues enumerating). Returns
    [Some true] if stopped at a solution, [Some false] if the space was
    exhausted, [None] if the node limit was hit. *)

val nodes_explored : t -> int
