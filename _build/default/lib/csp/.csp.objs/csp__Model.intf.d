lib/csp/model.mli: Isa
