lib/csp/minizinc.mli: Model
