lib/csp/fd.mli:
