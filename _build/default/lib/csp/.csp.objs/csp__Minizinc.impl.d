lib/csp/minizinc.ml: Array Buffer Isa List Model Perms Printf
