lib/csp/fd.ml: Array Fun List
