lib/csp/model.ml: Array Bool Fd Isa List Machine Perms Unix
