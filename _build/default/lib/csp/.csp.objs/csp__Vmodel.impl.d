lib/csp/vmodel.ml: Array Fd Isa List Minmax Perms Unix
