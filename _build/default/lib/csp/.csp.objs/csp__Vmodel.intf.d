lib/csp/vmodel.mli: Minmax
