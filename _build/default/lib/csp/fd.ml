type var = int (* index *)

type t = {
  mutable doms : int array; (* bitmask domain per variable *)
  mutable nvars : int;
  mutable props : (t -> bool) array; (* propagator pool *)
  mutable nprops : int;
  mutable watchers : int list array; (* var -> propagator ids *)
  mutable trail : (int * int) list; (* (var, old domain) *)
  mutable trail_marks : int list; (* trail lengths at choice points *)
  mutable trail_len : int;
  mutable queue : int list; (* pending propagator ids *)
  mutable queued : bool array;
  mutable nodes : int;
}

let create () =
  {
    doms = Array.make 16 0;
    nvars = 0;
    props = Array.make 16 (fun _ -> true);
    nprops = 0;
    watchers = Array.make 16 [];
    trail = [];
    trail_marks = [];
    trail_len = 0;
    queue = [];
    queued = Array.make 16 false;
    nodes = 0;
  }

let new_var t ~lo ~hi =
  if lo < 0 || hi > 62 || lo > hi then invalid_arg "Fd.new_var: bad bounds";
  let v = t.nvars in
  t.nvars <- v + 1;
  if t.nvars > Array.length t.doms then begin
    let nd = Array.make (2 * Array.length t.doms) 0 in
    Array.blit t.doms 0 nd 0 v;
    t.doms <- nd;
    let nw = Array.make (2 * Array.length t.watchers) [] in
    Array.blit t.watchers 0 nw 0 v;
    t.watchers <- nw
  end;
  t.doms.(v) <- ((1 lsl (hi - lo + 1)) - 1) lsl lo;
  v

let dom_values t v =
  let d = t.doms.(v) in
  List.filter (fun i -> d land (1 lsl i) <> 0) (List.init 63 Fun.id)

let is_fixed t v =
  let d = t.doms.(v) in
  d <> 0 && d land (d - 1) = 0

let value t v =
  if not (is_fixed t v) then invalid_arg "Fd.value: variable not fixed";
  let d = t.doms.(v) in
  let rec go i = if d land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let enqueue_watchers t v =
  List.iter
    (fun p ->
      if not t.queued.(p) then begin
        t.queued.(p) <- true;
        t.queue <- p :: t.queue
      end)
    t.watchers.(v)

let set_dom t v d =
  if d <> t.doms.(v) then begin
    t.trail <- (v, t.doms.(v)) :: t.trail;
    t.trail_len <- t.trail_len + 1;
    t.doms.(v) <- d;
    enqueue_watchers t v
  end

let remove_value t v x =
  let d = t.doms.(v) land lnot (1 lsl x) in
  if d = 0 then false
  else begin
    set_dom t v d;
    true
  end

let assign t v x =
  let d = t.doms.(v) land (1 lsl x) in
  if d = 0 then false
  else begin
    set_dom t v d;
    true
  end

let post t ?(watch = []) prop =
  if t.nprops = Array.length t.props then begin
    let np = Array.make (2 * t.nprops) (fun _ -> true) in
    Array.blit t.props 0 np 0 t.nprops;
    t.props <- np;
    let nq = Array.make (2 * Array.length t.queued) false in
    Array.blit t.queued 0 nq 0 t.nprops;
    t.queued <- nq
  end;
  let id = t.nprops in
  t.props.(id) <- prop;
  t.nprops <- id + 1;
  List.iter (fun v -> t.watchers.(v) <- id :: t.watchers.(v)) watch;
  t.queued.(id) <- true;
  t.queue <- id :: t.queue

let propagate t =
  let ok = ref true in
  let rec loop () =
    match t.queue with
    | [] -> ()
    | p :: rest ->
        t.queue <- rest;
        t.queued.(p) <- false;
        if t.props.(p) t then loop ()
        else begin
          ok := false;
          (* Drain the queue. *)
          List.iter (fun q -> t.queued.(q) <- false) t.queue;
          t.queue <- []
        end
  in
  loop ();
  !ok

let push_mark t = t.trail_marks <- t.trail_len :: t.trail_marks

let pop_mark t =
  match t.trail_marks with
  | [] -> invalid_arg "Fd.pop_mark"
  | mark :: rest ->
      t.trail_marks <- rest;
      while t.trail_len > mark do
        match t.trail with
        | (v, d) :: tl ->
            t.doms.(v) <- d;
            t.trail <- tl;
            t.trail_len <- t.trail_len - 1
        | [] -> assert false
      done;
      List.iter (fun q -> t.queued.(q) <- false) t.queue;
      t.queue <- []

let nodes_explored t = t.nodes

let solve ?(on_solution = fun _ -> true) ?(node_limit = max_int) t =
  let limit_hit = ref false in
  let stop = ref false in
  let rec dfs () =
    if !stop || !limit_hit then ()
    else begin
      t.nodes <- t.nodes + 1;
      if t.nodes > node_limit then limit_hit := true
      else begin
        (* First unassigned variable, ascending values. *)
        let rec first v = if v >= t.nvars then -1 else if is_fixed t v then first (v + 1) else v in
        let v = first 0 in
        if v < 0 then begin
          if on_solution t then stop := true
        end
        else
          List.iter
            (fun x ->
              if (not !stop) && not !limit_hit then begin
                push_mark t;
                if assign t v x && propagate t then dfs ();
                pop_mark t
              end)
            (dom_values t v)
      end
    end
  in
  if propagate t then dfs ();
  if !limit_hit then None else Some !stop
