(** CP synthesis of min/max kernels (paper, Section 5.4: "our CP approach
    generates a solution in 15.8 s" for n = 3; nothing for n = 4).

    Decision variables per step: opcode in [{movdqa, pmin, pmax}] and two
    operand registers; state variables per input permutation. Transitions
    propagate functionally once a step's instruction is fixed, as in
    {!Model}, but without flags. *)

type outcome = Found of Minmax.Vexec.program | Exhausted | Node_limit

type result = {
  outcome : outcome;
  solutions : Minmax.Vexec.program list;
  nodes : int;
  elapsed : float;
}

val synth :
  ?node_limit:int -> ?all_solutions:bool -> ?erasure_pruning:bool ->
  len:int -> int -> result
(** Search for min/max kernels of exactly [len] instructions for width [n].
    Results are verified on all permutations before being reported. *)

val find_min_length :
  ?node_limit:int -> ?max_len:int -> int -> (int * result) list
