type outcome = Found of Minmax.Vexec.program | Exhausted | Node_limit

type result = {
  outcome : outcome;
  solutions : Minmax.Vexec.program list;
  nodes : int;
  elapsed : float;
}

let op_movdqa = 0
let op_pmin = 1
let _op_pmax = 2

let instr_of_codes op dst src =
  let op =
    match op with
    | 0 -> Minmax.Vinstr.Movdqa
    | 1 -> Minmax.Vinstr.Pmin
    | _ -> Minmax.Vinstr.Pmax
  in
  { Minmax.Vinstr.op; dst; src }

let synth ?(node_limit = max_int) ?(all_solutions = false)
    ?(erasure_pruning = true) ~len n =
  let start = Unix.gettimeofday () in
  let cfg = Isa.Config.default n in
  let k = Isa.Config.nregs cfg in
  let perms = Perms.all n in
  let t = Fd.create () in
  let rec mk s acc =
    if s = len then Array.of_list (List.rev acc)
    else begin
      let o = Fd.new_var t ~lo:0 ~hi:2 in
      let d = Fd.new_var t ~lo:0 ~hi:(k - 1) in
      let sr = Fd.new_var t ~lo:0 ~hi:(k - 1) in
      mk (s + 1) ((o, d, sr) :: acc)
    end
  in
  let decisions = mk 0 [] in
  let value =
    Array.init (len + 1) (fun _ ->
        Array.init (List.length perms) (fun _ ->
            Array.init k (fun _ -> Fd.new_var t ~lo:0 ~hi:n)))
  in
  List.iteri
    (fun pi perm ->
      for r = 0 to k - 1 do
        let v = if r < n then perm.(r) else 0 in
        Fd.post t (fun t -> Fd.assign t value.(0).(pi).(r) v)
      done)
    perms;
  Array.iter
    (fun (_, d, sr) ->
      Fd.post t ~watch:[ d; sr ] (fun t ->
          if Fd.is_fixed t d then Fd.remove_value t sr (Fd.value t d)
          else if Fd.is_fixed t sr then Fd.remove_value t d (Fd.value t sr)
          else true))
    decisions;
  Array.iteri
    (fun s (o, d, sr) ->
      List.iteri
        (fun pi _ ->
          let deps = o :: d :: sr :: Array.to_list value.(s).(pi) in
          Fd.post t ~watch:deps (fun t ->
              if not (List.for_all (Fd.is_fixed t) deps) then true
              else begin
                let ov = Fd.value t o and dv = Fd.value t d and sv = Fd.value t sr in
                let cur r = Fd.value t value.(s).(pi).(r) in
                let ok = ref true in
                for r = 0 to k - 1 do
                  if r <> dv then
                    ok := !ok && Fd.assign t value.(s + 1).(pi).(r) (cur r)
                done;
                let nv =
                  if ov = op_movdqa then cur sv
                  else if ov = op_pmin then min (cur dv) (cur sv)
                  else max (cur dv) (cur sv)
                in
                ok := !ok && Fd.assign t value.(s + 1).(pi).(dv) nv;
                if !ok && erasure_pruning then begin
                  let mask = ref 0 in
                  for r = 0 to k - 1 do
                    if Fd.is_fixed t value.(s + 1).(pi).(r) then
                      mask := !mask lor (1 lsl Fd.value t value.(s + 1).(pi).(r))
                  done;
                  let need = ((1 lsl n) - 1) lsl 1 in
                  if !mask land need <> need then ok := false
                end;
                !ok
              end))
        perms)
    decisions;
  List.iteri
    (fun pi _ ->
      for r = 0 to n - 1 do
        Fd.post t (fun t -> Fd.assign t value.(len).(pi).(r) (r + 1))
      done)
    perms;
  let solutions = ref [] in
  let on_solution t =
    let p =
      Array.map
        (fun (o, d, sr) ->
          instr_of_codes (Fd.value t o) (Fd.value t d) (Fd.value t sr))
        decisions
    in
    if Minmax.Vexec.sorts_all_permutations cfg p then solutions := p :: !solutions;
    not all_solutions
  in
  let res = Fd.solve ~on_solution ~node_limit t in
  let solutions = List.rev !solutions in
  let outcome =
    match (res, solutions) with
    | None, _ -> Node_limit
    | Some _, p :: _ -> Found p
    | Some _, [] -> Exhausted
  in
  { outcome; solutions; nodes = Fd.nodes_explored t; elapsed = Unix.gettimeofday () -. start }

let find_min_length ?(node_limit = max_int) ?(max_len = 16) n =
  let rec go len acc =
    if len > max_len then List.rev acc
    else
      let r = synth ~node_limit ~len n in
      let acc = (len, r) :: acc in
      match r.outcome with
      | Found _ | Node_limit -> List.rev acc
      | Exhausted -> go (len + 1) acc
  in
  go 1 []
