(** A CDCL SAT solver.

    The paper's SMT-based synthesis baselines use z3/cvc5; this container is
    sealed, so the reproduction ships its own solver: conflict-driven clause
    learning with two-watched-literal propagation, 1-UIP conflict analysis,
    VSIDS-style activity ordering, phase saving, and Luby restarts. The
    finite-domain synthesis encodings ({!Smtlite}) bit-blast onto it.

    Variables are positive integers [1..n]; a literal is [+v] or [-v]. *)

type result = Sat of bool array | Unsat
(** [Sat model] maps variable [v] to [model.(v)] ([model.(0)] is unused). *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate and return a fresh variable. *)

val ensure_vars : t -> int -> unit
(** Make sure variables [1..n] exist. *)

val add_clause : t -> int list -> unit
(** Add a disjunction of literals. Adding the empty clause makes the
    instance trivially unsatisfiable. Raises [Invalid_argument] on literal 0
    or an unallocated variable. *)

val solve : ?assumptions:int list -> ?conflict_limit:int -> t -> result option
(** Solve under optional assumption literals. Returns [None] if the
    conflict limit (default: unlimited) is exhausted, otherwise
    [Some (Sat model)] or [Some Unsat]. The solver can be re-solved with
    different assumptions, and clauses can be added between calls
    (incremental use — the CEGIS loop relies on this). *)

val num_vars : t -> int
val num_clauses : t -> int

val stats_conflicts : t -> int
val stats_decisions : t -> int
val stats_propagations : t -> int
