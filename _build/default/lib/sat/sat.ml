type result = Sat of bool array | Unsat

(* Literals are encoded as 2v (positive) / 2v+1 (negative). *)
let lit_of_int l = if l > 0 then 2 * l else (2 * -l) + 1
let var_of_lit l = l lsr 1
let neg_lit l = l lxor 1
let lit_sign l = l land 1 = 0 (* true when positive *)

type clause = { lits : int array; learnt : bool }

type t = {
  mutable nvars : int;
  mutable clauses : clause array; (* growable pool *)
  mutable nclauses : int;
  mutable watches : int list array; (* watches.(lit) = clause ids *)
  mutable assigns : int array; (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array; (* clause id or -1 *)
  mutable activity : float array;
  mutable polarity : bool array; (* saved phase *)
  mutable trail : int array;
  mutable trail_len : int;
  mutable trail_lim : int list; (* stack of trail positions per level *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool; (* false once trivially unsat *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 16 { lits = [||]; learnt = false };
    nclauses = 0;
    watches = Array.make 16 [];
    assigns = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    activity = Array.make 8 0.0;
    polarity = Array.make 8 false;
    trail = Array.make 8 0;
    trail_len = 0;
    trail_lim = [];
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
  }

let grow_arrays s n =
  let cap = Array.length s.assigns in
  if n >= cap then begin
    let ncap = max (n + 1) (2 * cap) in
    let copy a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    s.assigns <- copy s.assigns (-1);
    s.level <- copy s.level 0;
    s.reason <- copy s.reason (-1);
    s.activity <- copy s.activity 0.0;
    s.polarity <- copy s.polarity false;
    let nt = Array.make ncap 0 in
    Array.blit s.trail 0 nt 0 s.trail_len;
    s.trail <- nt
  end;
  let wcap = Array.length s.watches in
  if 2 * (n + 1) >= wcap then begin
    let nw = Array.make (max (2 * (n + 1) + 2) (2 * wcap)) [] in
    Array.blit s.watches 0 nw 0 wcap;
    s.watches <- nw
  end

let new_var s =
  let v = s.nvars + 1 in
  s.nvars <- v;
  grow_arrays s v;
  v

let ensure_vars s n = while s.nvars < n do ignore (new_var s) done
let num_vars s = s.nvars
let num_clauses s = s.nclauses
let stats_conflicts s = s.conflicts
let stats_decisions s = s.decisions
let stats_propagations s = s.propagations

let value_lit s l =
  let a = s.assigns.(var_of_lit l) in
  if a < 0 then -1 else if lit_sign l then a else 1 - a

let push_clause s c =
  if s.nclauses = Array.length s.clauses then begin
    let nc = Array.make (2 * s.nclauses) c in
    Array.blit s.clauses 0 nc 0 s.nclauses;
    s.clauses <- nc
  end;
  s.clauses.(s.nclauses) <- c;
  s.nclauses <- s.nclauses + 1;
  s.nclauses - 1

let enqueue s l reason =
  let v = var_of_lit l in
  s.assigns.(v) <- (if lit_sign l then 1 else 0);
  s.level.(v) <- List.length s.trail_lim;
  s.reason.(v) <- reason;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

let add_clause s lits =
  if s.ok then begin
    List.iter
      (fun l ->
        if l = 0 then invalid_arg "Sat.add_clause: literal 0";
        if abs l > s.nvars then invalid_arg "Sat.add_clause: unknown variable")
      lits;
    (* Deduplicate; drop tautologies. *)
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.mem (-l) lits) lits in
    if not taut then begin
      let lits = List.map lit_of_int lits in
      (* At level 0 we can drop false literals and satisfied clauses. *)
      let lits =
        if s.trail_lim = [] then
          List.filter (fun l -> value_lit s l <> 0) lits
        else lits
      in
      let satisfied =
        s.trail_lim = [] && List.exists (fun l -> value_lit s l = 1) lits
      in
      if not satisfied then
        match lits with
        | [] -> s.ok <- false
        | [ l ] ->
            if s.trail_lim <> [] then
              invalid_arg "Sat.add_clause: unit clause above level 0"
            else if value_lit s l = 0 then s.ok <- false
            else if value_lit s l = -1 then enqueue s l (-1)
        | l0 :: l1 :: _ ->
            let arr = Array.of_list lits in
            let id = push_clause s { lits = arr; learnt = false } in
            s.watches.(neg_lit l0) <- id :: s.watches.(neg_lit l0);
            s.watches.(neg_lit l1) <- id :: s.watches.(neg_lit l1)
    end
  end

(* Propagate until fixpoint; returns conflicting clause id or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < s.trail_len do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* Clauses watching ~l must find a new watch or propagate. *)
    let watching = s.watches.(l) in
    s.watches.(l) <- [];
    let rec go = function
      | [] -> ()
      | id :: rest ->
          if !conflict >= 0 then
            (* Conflict found: keep the remaining watchers. *)
            s.watches.(l) <- (id :: rest) @ s.watches.(l)
          else begin
            let c = s.clauses.(id) in
            let lits = c.lits in
            (* Ensure the false literal is at position 1. *)
            let falsel = neg_lit l in
            if lits.(0) = falsel then begin
              lits.(0) <- lits.(1);
              lits.(1) <- falsel
            end;
            if value_lit s lits.(0) = 1 then begin
              (* Satisfied: keep watching. *)
              s.watches.(l) <- id :: s.watches.(l);
              go rest
            end
            else begin
              (* Look for a new watch. *)
              let found = ref false in
              let k = ref 2 in
              while (not !found) && !k < Array.length lits do
                if value_lit s lits.(!k) <> 0 then begin
                  let w = lits.(!k) in
                  lits.(!k) <- lits.(1);
                  lits.(1) <- w;
                  s.watches.(neg_lit w) <- id :: s.watches.(neg_lit w);
                  found := true
                end;
                incr k
              done;
              if !found then go rest
              else begin
                (* Unit or conflicting. *)
                s.watches.(l) <- id :: s.watches.(l);
                if value_lit s lits.(0) = 0 then begin
                  conflict := id;
                  s.qhead <- s.trail_len;
                  go rest
                end
                else begin
                  enqueue s lits.(0) id;
                  go rest
                end
              end
            end
          end
    in
    go watching
  done;
  !conflict

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay_activity s = s.var_inc <- s.var_inc /. 0.95

let decision_level s = List.length s.trail_lim

let backtrack s lvl =
  while List.length s.trail_lim > lvl do
    let pos = List.hd s.trail_lim in
    s.trail_lim <- List.tl s.trail_lim;
    for i = s.trail_len - 1 downto pos do
      let v = var_of_lit s.trail.(i) in
      s.polarity.(v) <- s.assigns.(v) = 1;
      s.assigns.(v) <- -1;
      s.reason.(v) <- -1
    done;
    s.trail_len <- pos
  done;
  s.qhead <- min s.qhead s.trail_len

(* First-UIP conflict analysis. Returns (learnt clause lits, backtrack lvl). *)
let analyze s confl =
  let seen = Array.make (s.nvars + 1) false in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let idx = ref (s.trail_len - 1) in
  let cur_level = decision_level s in
  let continue = ref true in
  while !continue do
    let reason_lits =
      let c = s.clauses.(!confl) in
      if !p = -1 then Array.to_list c.lits
      else List.filter (fun l -> l <> !p) (Array.to_list c.lits)
    in
    List.iter
      (fun q ->
        let v = var_of_lit q in
        if (not seen.(v)) && s.level.(v) > 0 then begin
          seen.(v) <- true;
          bump_var s v;
          if s.level.(v) >= cur_level then incr counter
          else learnt := q :: !learnt
        end)
      reason_lits;
    (* Walk the trail backwards to the next marked literal. *)
    while not seen.(var_of_lit s.trail.(!idx)) do
      decr idx
    done;
    let l = s.trail.(!idx) in
    let v = var_of_lit l in
    seen.(v) <- false;
    decr counter;
    if !counter = 0 then begin
      learnt := neg_lit l :: !learnt;
      continue := false
    end
    else begin
      confl := s.reason.(v);
      p := l;
      decr idx
    end
  done;
  let learnt = !learnt in
  (* Backtrack level: second-highest level in the clause. *)
  let asserting = List.hd learnt in
  let blevel =
    List.fold_left
      (fun acc l ->
        if l = asserting then acc else max acc s.level.(var_of_lit l))
      0 (List.tl learnt)
  in
  (learnt, blevel)

let pick_branch s =
  let best = ref (-1) and best_act = ref neg_infinity in
  for v = 1 to s.nvars do
    if s.assigns.(v) < 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

(* Luby restart sequence (0-based): 1 1 2 1 1 2 4 1 1 2 ... *)
let luby x =
  let rec grow sz seq = if sz < x + 1 then grow ((2 * sz) + 1) (seq + 1) else (sz, seq) in
  let rec shrink x sz seq =
    if sz - 1 = x then 1 lsl seq
    else shrink (x mod ((sz - 1) / 2)) ((sz - 1) / 2) (seq - 1)
  in
  let sz, seq = grow 1 0 in
  shrink x sz seq

let solve ?(assumptions = []) ?(conflict_limit = max_int) s =
  if not s.ok then Some Unsat
  else begin
    backtrack s 0;
    match propagate s with
    | c when c >= 0 ->
        s.ok <- false;
        Some Unsat
    | _ ->
        let assumptions = List.map lit_of_int assumptions in
        let restart = ref 0 in
        let result = ref None in
        let budget_exhausted = ref false in
        while !result = None && not !budget_exhausted do
          let limit = 100 * luby !restart in
          incr restart;
          let local_conflicts = ref 0 in
          let restart_now = ref false in
          while !result = None && not !restart_now do
            let confl = propagate s in
            if confl >= 0 then begin
              s.conflicts <- s.conflicts + 1;
              incr local_conflicts;
              if decision_level s = 0 then begin
                s.ok <- false;
                result := Some Unsat
              end
              else begin
                let learnt, blevel = analyze s confl in
                backtrack s blevel;
                (match learnt with
                | [ l ] -> enqueue s l (-1)
                | _ :: _ ->
                    let arr = Array.of_list learnt in
                    (* Watch the asserting literal and a deepest-level other
                       literal, preserving the watch invariant on future
                       backtracks. *)
                    let deepest = ref 1 in
                    for k = 2 to Array.length arr - 1 do
                      if s.level.(var_of_lit arr.(k))
                         > s.level.(var_of_lit arr.(!deepest))
                      then deepest := k
                    done;
                    let w = arr.(!deepest) in
                    arr.(!deepest) <- arr.(1);
                    arr.(1) <- w;
                    let id = push_clause s { lits = arr; learnt = true } in
                    s.watches.(neg_lit arr.(0)) <- id :: s.watches.(neg_lit arr.(0));
                    s.watches.(neg_lit arr.(1)) <- id :: s.watches.(neg_lit arr.(1));
                    enqueue s arr.(0) id
                | [] -> assert false);
                decay_activity s;
                if s.conflicts >= conflict_limit then budget_exhausted := true;
                if !local_conflicts >= limit && decision_level s > 0 then
                  restart_now := true
              end
            end
            else begin
              (* Pick assumptions first, then a free variable. *)
              let dl = decision_level s in
              if dl < List.length assumptions then begin
                let a = List.nth assumptions dl in
                match value_lit s a with
                | 1 ->
                    (* Already satisfied: open a dummy level. *)
                    s.trail_lim <- s.trail_len :: s.trail_lim
                | 0 -> result := Some Unsat
                | _ ->
                    s.decisions <- s.decisions + 1;
                    s.trail_lim <- s.trail_len :: s.trail_lim;
                    enqueue s a (-1)
              end
              else begin
                let v = pick_branch s in
                if v < 0 then begin
                  (* All assigned: model found. *)
                  let model = Array.make (s.nvars + 1) false in
                  for i = 1 to s.nvars do
                    model.(i) <- s.assigns.(i) = 1
                  done;
                  result := Some (Sat model)
                end
                else begin
                  s.decisions <- s.decisions + 1;
                  s.trail_lim <- s.trail_len :: s.trail_lim;
                  let l = (2 * v) lor if s.polarity.(v) then 0 else 1 in
                  enqueue s l (-1)
                end
              end
            end;
            if !budget_exhausted then restart_now := true
          done;
          if !result = None && not !budget_exhausted then backtrack s 0
        done;
        (match !result with
        | Some (Sat _) | None -> backtrack s 0
        | Some Unsat -> ());
        !result
  end
