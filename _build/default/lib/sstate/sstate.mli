(** Synthesis states.

    A synthesis state tracks the effect of a partial program on {e every}
    input permutation of [1..n] simultaneously (paper, Section 3): one
    {!Machine.Assign.code} per permutation. States are kept in canonical
    form — assignment codes sorted ascending with duplicates removed — which
    realizes the paper's two symmetry reductions (Section 3.6): programs that
    behave identically on all inputs map to the same state, and input
    permutations whose assignments have converged are tracked once. *)

type t = private int array
(** Canonical: strictly increasing array of assignment codes, never empty. *)

val initial : Isa.Config.t -> t
(** One assignment per permutation of [1..n], scratch zeroed, flags clear. *)

val of_codes : int array -> t
(** Canonicalize an arbitrary code vector (sort + dedup). The input array is
    not modified. *)

val codes : t -> int array
(** The underlying canonical array (do not mutate). *)

val size : t -> int
(** Number of distinct assignments in the state. *)

val apply : Isa.Config.t -> Isa.Instr.t -> t -> t
(** Execute one instruction on every assignment and re-canonicalize. *)

val is_final : Isa.Config.t -> t -> bool
(** All assignments have their value registers sorted ([1..n] in order). *)

val distinct_perms : Isa.Config.t -> t -> int
(** Number of distinct value-register projections — the paper's main
    progress metric ("how much the array has been sorted", Section 3.1) and
    the quantity its cut heuristic thresholds (Section 3.5). *)

val distinct_assignments : t -> int
(** Number of distinct full assignments (equals {!size} because states are
    deduplicated). *)

val all_viable : Isa.Config.t -> t -> bool
(** No assignment has lost one of the values [1..n] (paper, Section 3.3). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** FNV-1a over the code array; used by the search's dedup table. *)

val pp : Isa.Config.t -> Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
(** Hash table keyed by canonical states. *)
