type t = int array

let canonicalize a =
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then invalid_arg "Sstate: empty state";
  (* Count distinct entries, then copy them out in order. *)
  let distinct = ref 1 in
  for i = 1 to n - 1 do
    if a.(i) <> a.(i - 1) then incr distinct
  done;
  if !distinct = n then a
  else begin
    let out = Array.make !distinct a.(0) in
    let j = ref 0 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then begin
        incr j;
        out.(!j) <- a.(i)
      end
    done;
    out
  end

let of_codes a = canonicalize (Array.copy a)

let initial cfg =
  Perms.all cfg.Isa.Config.n
  |> List.map (Machine.Assign.of_permutation cfg)
  |> Array.of_list |> canonicalize

let codes t = t
let size = Array.length

let apply cfg instr t =
  canonicalize (Array.map (fun c -> Machine.Assign.apply cfg instr c) t)

let is_final cfg t =
  let ok = ref true in
  Array.iter (fun c -> if not (Machine.Assign.is_sorted cfg c) then ok := false) t;
  !ok

let distinct_perms cfg t =
  (* Value-register projections of a sorted code array are not themselves
     sorted (flags and scratch occupy the low and high bits), so collect and
     sort the projection keys. *)
  let keys = Array.map (fun c -> Machine.Assign.perm_key cfg c) t in
  Array.sort compare keys;
  let d = ref 1 in
  for i = 1 to Array.length keys - 1 do
    if keys.(i) <> keys.(i - 1) then incr d
  done;
  !d

let distinct_assignments = Array.length

let all_viable cfg t =
  let ok = ref true in
  Array.iter (fun c -> if not (Machine.Assign.viable cfg c) then ok := false) t;
  !ok

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare

let hash (t : t) =
  let h = ref 0x1bf29ce484222325 in
  for i = 0 to Array.length t - 1 do
    h := (!h lxor t.(i)) * 0x100000001b3
  done;
  !h land max_int

let pp cfg ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf ppf "@,";
      Machine.Assign.pp cfg ppf c)
    t;
  Format.fprintf ppf "@]"

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
