bin/experiments.mli:
