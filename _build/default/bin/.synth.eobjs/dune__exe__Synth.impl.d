bin/synth.ml: Arg Array Cmd Cmdliner Isa Machine Minmax Planning Printf Search Term
