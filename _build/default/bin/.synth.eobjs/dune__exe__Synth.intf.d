bin/synth.mli:
