(* Bring your own kernel: parse a program from text, verify it, analyze it
   with the cost model, and race it against the synthesized and handwritten
   contenders — the workflow a downstream user follows to evaluate a kernel
   candidate for their own runtime.

     dune exec examples/custom_kernel_bench.exe *)

(* The classical sorting-network kernel, written out by hand (what a
   careful engineer would produce without a synthesizer). *)
let my_kernel_text =
  {|
# compare-and-swap r1 r2
mov s1 r1
cmp r1 r2
cmovg r1 r2
cmovg r2 s1
# compare-and-swap r2 r3
mov s1 r2
cmp r2 r3
cmovg r2 r3
cmovg r3 s1
# compare-and-swap r1 r2
mov s1 r1
cmp r1 r2
cmovg r1 r2
cmovg r2 s1
|}

let () =
  let cfg = Isa.Config.default 3 in
  let kernel =
    match Isa.Program.of_string cfg my_kernel_text with
    | Ok p -> p
    | Error e -> failwith e
  in
  (* 1. Verify: all 3! permutations, plus a random fuzz over duplicates. *)
  assert (Machine.Exec.sorts_all_permutations cfg kernel);
  assert (
    Machine.Exec.sorts_random_suite cfg kernel ~seed:7 ~cases:1000 ~lo:(-5) ~hi:5);
  Printf.printf "hand-written kernel verified (%d instructions)\n\n"
    (Array.length kernel);
  (* 2. Static analysis: instruction mix, dependence structure, predicted
        cost (the uiCA-style model of Section 5.3/5.4). *)
  let show name p =
    let a = Perf.Cost.analyze cfg p in
    Printf.printf
      "%-12s %2d instr, %2d uops, critical path %2d cycles, throughput \
       %.2f cyc/iter, score %d\n"
      name a.Perf.Cost.instructions a.Perf.Cost.total_uops
      a.Perf.Cost.critical_path a.Perf.Cost.throughput (Isa.Program.score p)
  in
  show "mine" kernel;
  let synthesized =
    match Sortsynth.synthesize 3 with Some p -> p | None -> assert false
  in
  show "synthesized" synthesized;
  show "paper" Perf.Kernels.paper_sort3;
  (* 3. Race them, standalone and inside quicksort. *)
  let contenders =
    [
      Perf.Compile.kernel ~name:"mine" cfg kernel;
      Perf.Compile.kernel ~name:"synthesized" cfg synthesized;
      Perf.Baselines.swap 3;
      Perf.Baselines.std 3;
    ]
  in
  Printf.printf "\nstandalone (1000 random triples):\n";
  List.iter
    (fun r ->
      Printf.printf "  %-12s %8.0f ns  rank %d\n" r.Perf.Measure.name
        r.Perf.Measure.time_ns r.Perf.Measure.rank)
    (Perf.Measure.standalone ~cases:1000 ~iters:16 contenders);
  Printf.printf "\nas quicksort base case (random arrays up to 16k):\n";
  List.iter
    (fun r ->
      Printf.printf "  %-12s %8.0f ns  rank %d\n" r.Perf.Measure.name
        r.Perf.Measure.time_ns r.Perf.Measure.rank)
    (Perf.Measure.embedded ~cases:20 ~max_len:16000 `Quicksort contenders)
