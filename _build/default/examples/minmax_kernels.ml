(* Min/max (vector) kernels, Section 5.4 of the paper: synthesize kernels
   over movdqa/pmin/pmax, compare them against the sorting-network
   implementation, and cross-check the paper's 8-instruction example.

     dune exec examples/minmax_kernels.exe *)

let () =
  (* The paper's printed 8-instruction kernel really sorts. *)
  let cfg3 = Isa.Config.default 3 in
  Printf.printf "paper's n=3 min/max kernel (8 instructions):\n%s\n\n"
    (Minmax.Vexec.to_x86 cfg3 Minmax.paper_sort3);
  assert (Minmax.Vexec.sorts_all_permutations cfg3 Minmax.paper_sort3);
  (* Synthesize our own for n = 2..4 and compare sizes with networks. *)
  List.iter
    (fun n ->
      let r = Minmax.synthesize n in
      match r.Minmax.programs with
      | [] -> Printf.printf "n=%d: nothing found\n" n
      | p :: _ ->
          let cfg = Isa.Config.default n in
          assert (Minmax.Vexec.sorts_all_permutations cfg p);
          let net = Minmax.network_kernel n in
          let movs, mins, maxs = Minmax.Vexec.instruction_counts p in
          Printf.printf
            "n=%d: synthesized %d instructions (%d movdqa, %d pmin, %d pmax) \
             vs %d for the network, in %.3f s over %d states\n"
            n (Array.length p) movs mins maxs (Array.length net)
            r.Minmax.elapsed r.Minmax.expanded)
    [ 2; 3; 4 ];
  (* Enumerate all optimal n=3 min/max kernels (paper artifact:
     sol3_minmax_allsolutions). *)
  let r =
    Minmax.synthesize
      ~opts:{ Minmax.default with Minmax.all_solutions = true; cut = Some 2.0 }
      3
  in
  Printf.printf "\nall optimal n=3 min/max kernels under cut 2: %d\n"
    r.Minmax.solution_count;
  (* Run one synthesized kernel against the cmov kernel on real data. *)
  match (Minmax.synthesize 3).Minmax.programs with
  | p :: _ ->
      let sorter = Minmax.to_sorter ~name:"minmax3" 3 p in
      let rows =
        Perf.Measure.standalone ~cases:500 ~iters:12
          [
            sorter;
            Perf.Compile.kernel ~name:"cmov3(paper)" cfg3 Perf.Kernels.paper_sort3;
            Minmax.to_sorter ~name:"network3" 3 (Minmax.network_kernel 3);
          ]
      in
      List.iter
        (fun r ->
          Printf.printf "%-16s %8.0f ns  rank %d\n" r.Perf.Measure.name
            r.Perf.Measure.time_ns r.Perf.Measure.rank)
        rows
  | [] -> ()
