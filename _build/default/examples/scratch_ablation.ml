(* How many scratch registers does an optimal kernel need?

   The paper fixes m = 1 scratch register. The model supports 0..3, and the
   question "does a second scratch register buy a shorter kernel?" is
   exactly the kind of design exploration the library enables: rerun the
   certified search under each configuration and compare the optima.

     dune exec examples/scratch_ablation.exe           (n = 2 and 3)
     dune exec examples/scratch_ablation.exe -- 4      (adds n = 4, slower) *)

let certified_optimum cfg =
  let opts = { Search.best with Search.engine = Search.Level_sync } in
  let r = Search.run ~opts cfg in
  (r.Search.optimal_length, r.Search.stats.Search.elapsed, r.Search.stats.Search.expanded)

let () =
  let max_n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3 in
  Printf.printf "%-4s %-4s %-14s %-10s %s\n" "n" "m" "optimal length" "time" "states";
  Printf.printf "%s\n" (String.make 48 '-');
  for n = 2 to max_n do
    for m = 0 to 2 do
      (* With m = 0 there may be no kernel at all for some n: a swap needs
         a temporary unless conditional moves can route around it. *)
      let cfg = Isa.Config.make ~n ~m in
      let len, time, states = certified_optimum cfg in
      Printf.printf "%-4d %-4d %-14s %-10s %d\n%!" n m
        (match len with Some l -> string_of_int l | None -> "none")
        (Printf.sprintf "%.2fs" time)
        states
    done
  done;
  print_newline ();
  (* The paper's configuration (m = 1) is the sweet spot: m = 0 makes
     sorting impossible (no temporary survives a conditional exchange) and
     m = 2 does not shorten the kernels, it only widens the search. *)
  print_endline
    "Observation: extra scratch registers never shorten the optimal kernel;\n\
     they only enlarge the instruction universe and slow the search."
