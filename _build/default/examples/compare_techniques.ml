(* Run every synthesis technique in the repository on the same task —
   a sorting kernel for n = 2 — and report what each one finds and at what
   cost. This mirrors the paper's Section 5.2 comparison at a size where
   every technique terminates in seconds; bin/experiments (e6, e7, e10,
   e11) runs the n = 3 versions with realistic budgets.

     dune exec examples/compare_techniques.exe *)

let row name outcome time detail = Printf.printf "%-28s %-22s %-10s %s\n" name outcome time detail

let ts = Printf.sprintf "%.3f s"

let () =
  Printf.printf "%-28s %-22s %-10s %s\n" "technique" "outcome" "time" "detail";
  Printf.printf "%s\n" (String.make 88 '-');
  let n = 2 in
  (* Enumerative (the paper's contribution). *)
  let r = Search.run_mode ~mode:Search.All_optimal (Isa.Config.default n) in
  row "enum (level-sync)"
    (Printf.sprintf "optimal len %d" (Option.get r.Search.optimal_length))
    (ts r.Search.stats.Search.elapsed)
    (Printf.sprintf "%d distinct solutions" r.Search.solution_count);
  (* SMT (bit-blasted onto the in-repo CDCL solver). *)
  let s = Smtlite.synth_cegis ~len:4 n in
  row "SMT-CEGIS"
    (match s.Smtlite.outcome with
    | Smtlite.Found p -> Printf.sprintf "found len %d" (Array.length p)
    | Smtlite.Unsat_length -> "unsat"
    | Smtlite.Budget_exhausted -> "budget")
    (ts s.Smtlite.elapsed)
    (Printf.sprintf "%d CEGIS iterations, %d conflicts" s.Smtlite.cegis_iterations
       s.Smtlite.sat_conflicts);
  let s = Smtlite.synth_perm ~len:3 n in
  row "SMT-PERM (len 3)"
    (match s.Smtlite.outcome with
    | Smtlite.Unsat_length -> "UNSAT: 4 is minimal"
    | _ -> "unexpected")
    (ts s.Smtlite.elapsed) "solver-based minimality proof";
  (* Constraint programming. *)
  let c = Csp.Model.synth ~len:4 n in
  row "CP (FD propagation)"
    (match c.Csp.Model.outcome with
    | Csp.Model.Found p -> Printf.sprintf "found len %d" (Array.length p)
    | Csp.Model.Exhausted -> "unsat"
    | Csp.Model.Node_limit -> "node limit")
    (ts c.Csp.Model.elapsed)
    (Printf.sprintf "%d nodes" c.Csp.Model.nodes);
  (* ILP. *)
  let i = Ilp.Model.synth ~len:4 n in
  row "ILP (0/1 B&B)"
    (match i.Ilp.Model.outcome with
    | Ilp.Model.Found p -> Printf.sprintf "found len %d" (Array.length p)
    | Ilp.Model.Infeasible -> "infeasible"
    | Ilp.Model.Node_limit -> "node limit")
    (ts i.Ilp.Model.elapsed)
    (Printf.sprintf "%d vars, %d constraints" i.Ilp.Model.variables
       i.Ilp.Model.constraints);
  (* Stochastic search. *)
  let k = Stoke.cold ~opts:{ (Stoke.default n) with Stoke.iterations = 150_000 } n in
  row "STOKE (cold MCMC)"
    (if k.Stoke.correct then Printf.sprintf "found len %d" (Array.length k.Stoke.best)
     else "no correct kernel")
    (ts k.Stoke.elapsed)
    (Printf.sprintf "%d accepted moves" k.Stoke.accepted);
  (* Planning. *)
  let p = Planning.Planner.solve ~max_expansions:500_000 n in
  row "planner (goal-count greedy)"
    (match p.Planning.Planner.plan with
    | Some q -> Printf.sprintf "plan len %d" (Array.length q)
    | None -> "no plan")
    (ts p.Planning.Planner.elapsed)
    (Printf.sprintf "%d expanded" p.Planning.Planner.expanded);
  (* MCTS (AlphaDev-style). *)
  let m = Mcts.search ~opts:{ (Mcts.default n) with Mcts.simulations = 30_000 } n in
  row "MCTS (AlphaDev-style)"
    (match (m.Mcts.correct, m.Mcts.best_length) with
    | true, Some l -> Printf.sprintf "found len %d" l
    | _ -> "no correct kernel")
    (ts m.Mcts.elapsed)
    (Printf.sprintf "%d simulations, %d tree nodes" m.Mcts.simulations_run
       m.Mcts.tree_nodes)
