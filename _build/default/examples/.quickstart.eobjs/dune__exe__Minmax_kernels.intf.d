examples/minmax_kernels.mli:
