examples/enumerate_all.mli:
