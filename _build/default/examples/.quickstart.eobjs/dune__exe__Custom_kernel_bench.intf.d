examples/custom_kernel_bench.mli:
