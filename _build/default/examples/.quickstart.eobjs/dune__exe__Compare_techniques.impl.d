examples/compare_techniques.ml: Array Csp Ilp Isa Mcts Option Planning Printf Search Smtlite Stoke String
