examples/quickstart.mli:
