examples/scratch_ablation.mli:
