examples/custom_kernel_bench.ml: Array Isa List Machine Perf Printf Sortsynth
