examples/scratch_ablation.ml: Array Isa Printf Search String Sys
