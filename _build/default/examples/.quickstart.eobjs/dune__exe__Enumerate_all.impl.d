examples/enumerate_all.ml: Array Isa List Machine Perf Printf Search Sys
