examples/quickstart.ml: Array Isa Machine Printf Sortnet Sortsynth String
