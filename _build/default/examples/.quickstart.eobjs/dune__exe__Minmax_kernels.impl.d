examples/minmax_kernels.ml: Array Isa List Minmax Perf Printf
