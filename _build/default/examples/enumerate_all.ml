(* Enumerate the complete optimal solution space for n = 3 and inspect its
   structure: solution counts under different cut factors, the command
   combinations in use, and the spread of predicted performance. This is
   the workload behind the paper's Figure 2 and its "5602 solutions, only
   23 command combinations" observation.

     dune exec examples/enumerate_all.exe            (cuts 1 and 1.5, fast)
     dune exec examples/enumerate_all.exe -- full    (adds k=2: all 5602) *)

let enumerate k =
  let opts =
    {
      Search.best with
      Search.engine = Search.Level_sync;
      action_filter = Search.All_actions;
      cut = Search.Mult k;
      max_solutions = 6000;
    }
  in
  Search.run_mode ~opts ~mode:Search.All_optimal (Isa.Config.default 3)

let () =
  let full = Array.length Sys.argv > 1 && Sys.argv.(1) = "full" in
  let ks = if full then [ 1.0; 1.5; 2.0 ] else [ 1.0; 1.5 ] in
  List.iter
    (fun k ->
      let r = enumerate k in
      let programs = r.Search.programs in
      let sigs =
        List.sort_uniq compare (List.map Isa.Program.opcode_signature programs)
      in
      let cfg = Isa.Config.default 3 in
      let costs = List.map (fun p -> Perf.Cost.predicted_cost cfg p) programs in
      let lo = List.fold_left min infinity costs
      and hi = List.fold_left max neg_infinity costs in
      Printf.printf
        "cut k=%.1f: %d optimal length-%d solutions (%d reconstructed), %d \
         command combinations, predicted cost %.2f .. %.2f cycles, %.2f s\n"
        k r.Search.solution_count
        (match r.Search.optimal_length with Some l -> l | None -> 0)
        (List.length programs) (List.length sigs) lo hi
        r.Search.stats.Search.elapsed;
      (* Every single one is verified. *)
      assert (
        List.for_all (fun p -> Machine.Exec.sorts_all_permutations cfg p) programs))
    ks;
  if not full then
    print_endline
      "(run with 'full' to also enumerate k=2 — all 5602 solutions, ~3 min)"
