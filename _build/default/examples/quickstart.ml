(* Quickstart: synthesize a sorting kernel for 3 values, print it, and run
   it on a concrete input.

     dune exec examples/quickstart.exe *)

let () =
  let n = 3 in
  (* One call: the paper's best enumerative configuration, result verified
     on all n! permutations. *)
  match Sortsynth.synthesize n with
  | None -> prerr_endline "synthesis failed"
  | Some kernel ->
      let cfg = Isa.Config.default n in
      Printf.printf "Synthesized a %d-instruction branchless sorting kernel:\n\n"
        (Array.length kernel);
      print_endline (Isa.Program.to_string cfg kernel);
      Printf.printf "\nAs x86-64 assembly:\n\n%s\n" (Sortsynth.to_x86 n kernel);
      (* Execute it on an arbitrary input (the ISA is constant-free, so
         correctness on permutations extends to any integers). *)
      let input = [| 1047; -3; 512 |] in
      let output = Machine.Exec.run cfg kernel input in
      Printf.printf "\nkernel [%s] = [%s]\n"
        (String.concat "; " (Array.to_list (Array.map string_of_int input)))
        (String.concat "; " (Array.to_list (Array.map string_of_int output)));
      (* The kernel is one instruction shorter than the classical sorting
         network implementation. *)
      let network = Sortnet.to_kernel cfg (Sortnet.optimal n) in
      Printf.printf
        "\nsorting-network kernel: %d instructions — the synthesizer saved %d\n"
        (Array.length network)
        (Array.length network - Array.length kernel)
