let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let cfg3 = Isa.Config.default 3
let cfg2 = Isa.Config.default 2

(* The paper's Section 2.2 worked execution for n = 2. *)
let paper_n2_kernel =
  [| Isa.Instr.mov 2 1; Isa.Instr.cmp 0 1; Isa.Instr.cmovg 1 0; Isa.Instr.cmovg 0 2 |]

let test_paper_n2_trace () =
  let st = Machine.Exec.init cfg2 [| 2; 1 |] in
  Machine.Exec.step st paper_n2_kernel.(0);
  check (Alcotest.array Alcotest.int) "after mov s1 r2" [| 2; 1; 1 |] st.Machine.Exec.regs;
  Machine.Exec.step st paper_n2_kernel.(1);
  assert (st.Machine.Exec.gt && not st.Machine.Exec.lt);
  Machine.Exec.step st paper_n2_kernel.(2);
  check (Alcotest.array Alcotest.int) "after cmovg r2 r1" [| 2; 2; 1 |] st.Machine.Exec.regs;
  Machine.Exec.step st paper_n2_kernel.(3);
  check (Alcotest.array Alcotest.int) "after cmovg r1 s1" [| 1; 2; 1 |] st.Machine.Exec.regs

let test_paper_n2_sorts () =
  assert (Machine.Exec.sorts_all_permutations cfg2 paper_n2_kernel)

let test_flags_cleared_on_equal () =
  let st = Machine.Exec.init cfg2 [| 7; 7 |] in
  st.Machine.Exec.lt <- true;
  Machine.Exec.step st (Isa.Instr.cmp 0 1);
  assert ((not st.Machine.Exec.lt) && not st.Machine.Exec.gt)

let test_cmov_noop_without_flag () =
  let st = Machine.Exec.init cfg2 [| 1; 2 |] in
  Machine.Exec.step st (Isa.Instr.cmovg 0 1);
  Machine.Exec.step st (Isa.Instr.cmovl 0 1);
  check (Alcotest.array Alcotest.int) "unchanged" [| 1; 2 |]
    (Array.sub st.Machine.Exec.regs 0 2)

let test_output_correct () =
  assert (Machine.Exec.output_correct ~input:[| 3; 1; 2 |] ~output:[| 1; 2; 3 |]);
  assert (not (Machine.Exec.output_correct ~input:[| 3; 1; 2 |] ~output:[| 1; 2; 2 |]));
  assert (not (Machine.Exec.output_correct ~input:[| 3; 1; 2 |] ~output:[| 2; 1; 3 |]))

let test_counterexample () =
  (* The identity program fails on the first unsorted permutation. *)
  check
    (Alcotest.option (Alcotest.array Alcotest.int))
    "first failure" (Some [| 1; 3; 2 |])
    (Machine.Exec.counterexample cfg3 [||]);
  check
    (Alcotest.option (Alcotest.array Alcotest.int))
    "no failure" None
    (Machine.Exec.counterexample cfg2 paper_n2_kernel)

(* Packed codes agree with the reference interpreter on random programs. *)
let random_program st cfg len =
  let instrs = Isa.Instr.all cfg in
  Array.init len (fun _ -> instrs.(Random.State.int st (Array.length instrs)))

let prop_packed_matches_reference =
  QCheck.Test.make ~name:"packed executor = reference interpreter" ~count:300
    QCheck.(pair (int_bound 100000) (int_range 0 15))
    (fun (seed, len) ->
      let st = Random.State.make [| seed |] in
      let p = random_program st cfg3 len in
      List.for_all
        (fun perm ->
          let code =
            Machine.Assign.run cfg3 p (Machine.Assign.of_permutation cfg3 perm)
          in
          let packed = Machine.Assign.value_regs cfg3 code in
          let reference = Machine.Exec.run cfg3 p perm in
          packed = reference)
        (Perms.all 3))

let prop_flags_match_reference =
  QCheck.Test.make ~name:"packed flags = reference flags" ~count:300
    QCheck.(pair (int_bound 100000) (int_range 1 10))
    (fun (seed, len) ->
      let st = Random.State.make [| seed |] in
      let p = random_program st cfg3 len in
      List.for_all
        (fun perm ->
          let code =
            Machine.Assign.run cfg3 p (Machine.Assign.of_permutation cfg3 perm)
          in
          let mst = Machine.Exec.init cfg3 perm in
          Array.iter (Machine.Exec.step mst) p;
          let f = Machine.Assign.flags code in
          (f = Machine.Assign.flag_lt) = mst.Machine.Exec.lt
          && (f = Machine.Assign.flag_gt) = mst.Machine.Exec.gt)
        (Perms.all 3))

let test_pack_roundtrip () =
  let vs = [| 3; 1; 2; 0 |] in
  let c = Machine.Assign.of_values cfg3 vs in
  check (Alcotest.array Alcotest.int) "values" vs (Machine.Assign.values cfg3 c);
  check (Alcotest.array Alcotest.int) "value regs" [| 3; 1; 2 |]
    (Machine.Assign.value_regs cfg3 c);
  check Alcotest.int "flags clear" Machine.Assign.flag_none (Machine.Assign.flags c)

let test_perm_key () =
  let a = Machine.Assign.of_values cfg3 [| 3; 1; 2; 0 |] in
  let b = Machine.Assign.of_values cfg3 [| 3; 1; 2; 3 |] in
  let c = Machine.Assign.of_values cfg3 [| 1; 3; 2; 0 |] in
  check Alcotest.int "scratch ignored" (Machine.Assign.perm_key cfg3 a)
    (Machine.Assign.perm_key cfg3 b);
  assert (Machine.Assign.perm_key cfg3 a <> Machine.Assign.perm_key cfg3 c)

let test_is_sorted_code () =
  assert (Machine.Assign.is_sorted cfg3 (Machine.Assign.of_values cfg3 [| 1; 2; 3; 3 |]));
  assert (not (Machine.Assign.is_sorted cfg3 (Machine.Assign.of_values cfg3 [| 1; 3; 2; 0 |])))

let test_viability () =
  assert (Machine.Assign.viable cfg3 (Machine.Assign.of_values cfg3 [| 3; 1; 2; 0 |]));
  (* Value 1 lives only in the scratch register: still viable. *)
  assert (Machine.Assign.viable cfg3 (Machine.Assign.of_values cfg3 [| 3; 2; 2; 1 |]));
  (* Value 1 erased entirely: dead. *)
  assert (not (Machine.Assign.viable cfg3 (Machine.Assign.of_values cfg3 [| 3; 2; 2; 3 |])))

let test_random_suite () =
  assert (
    Machine.Exec.sorts_random_suite cfg2 paper_n2_kernel ~seed:42 ~cases:500
      ~lo:(-10000) ~hi:10000);
  assert (
    not (Machine.Exec.sorts_random_suite cfg2 [||] ~seed:42 ~cases:500 ~lo:0 ~hi:9))

let () =
  Alcotest.run "machine"
    [
      ( "exec",
        [
          Alcotest.test_case "paper n=2 trace" `Quick test_paper_n2_trace;
          Alcotest.test_case "paper n=2 sorts" `Quick test_paper_n2_sorts;
          Alcotest.test_case "flags on equal" `Quick test_flags_cleared_on_equal;
          Alcotest.test_case "cmov noop" `Quick test_cmov_noop_without_flag;
          Alcotest.test_case "output_correct" `Quick test_output_correct;
          Alcotest.test_case "counterexample" `Quick test_counterexample;
          Alcotest.test_case "random suite" `Quick test_random_suite;
        ] );
      ( "assign",
        [
          Alcotest.test_case "pack roundtrip" `Quick test_pack_roundtrip;
          Alcotest.test_case "perm_key" `Quick test_perm_key;
          Alcotest.test_case "is_sorted" `Quick test_is_sorted_code;
          Alcotest.test_case "viability" `Quick test_viability;
        ] );
      ( "properties",
        [ qtest prop_packed_matches_reference; qtest prop_flags_match_reference ]
      );
    ]
