test/test_planning_mcts.ml: Alcotest Array Isa List Machine Mcts Planning String
