test/test_extensions.ml: Alcotest Array Csp Filename Harness Hybrid Isa List Machine Minmax Perf Perms QCheck QCheck_alcotest Search Smtlite Sortnet String Sys
