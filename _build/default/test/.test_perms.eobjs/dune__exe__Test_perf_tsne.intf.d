test/test_perf_tsne.mli:
