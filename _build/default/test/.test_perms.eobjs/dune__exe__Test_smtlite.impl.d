test/test_smtlite.ml: Alcotest Array Isa List Machine Smtlite
