test/test_sstate.mli:
