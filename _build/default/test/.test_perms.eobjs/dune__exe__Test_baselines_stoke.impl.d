test/test_baselines_stoke.ml: Alcotest Array Isa List Machine Perf QCheck QCheck_alcotest Random Stoke
