test/test_csp_ilp.ml: Alcotest Array Csp Ilp Isa List Machine QCheck QCheck_alcotest Random Search
