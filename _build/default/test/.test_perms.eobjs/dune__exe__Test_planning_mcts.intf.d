test/test_planning_mcts.mli:
