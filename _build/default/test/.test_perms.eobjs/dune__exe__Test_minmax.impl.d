test/test_minmax.ml: Alcotest Array Isa List Machine Minmax Option Perf Perms QCheck QCheck_alcotest Random String
