test/test_csp_ilp.mli:
