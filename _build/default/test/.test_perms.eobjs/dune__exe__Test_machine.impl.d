test/test_machine.ml: Alcotest Array Isa List Machine Perms QCheck QCheck_alcotest Random
