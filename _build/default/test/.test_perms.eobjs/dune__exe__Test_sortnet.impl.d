test/test_sortnet.ml: Alcotest Array Isa List Machine Perms Printf QCheck QCheck_alcotest Random Sortnet
