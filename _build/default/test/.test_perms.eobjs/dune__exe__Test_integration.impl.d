test/test_integration.ml: Alcotest Array Csp Ilp Isa List Machine Minmax Option Perf Perms Planning Random Search Smtlite Sortnet Sortsynth Stoke String
