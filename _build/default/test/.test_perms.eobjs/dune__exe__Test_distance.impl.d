test/test_distance.ml: Alcotest Array Distance Fun Isa List Machine Perms QCheck QCheck_alcotest Random Sstate
