test/test_perms.mli:
