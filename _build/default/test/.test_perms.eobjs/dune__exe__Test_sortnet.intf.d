test/test_sortnet.mli:
