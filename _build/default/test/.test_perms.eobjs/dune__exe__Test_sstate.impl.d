test/test_sstate.ml: Alcotest Array Isa Machine QCheck QCheck_alcotest Random Sstate
