test/test_perms.ml: Alcotest List Perms Printf QCheck QCheck_alcotest Random
