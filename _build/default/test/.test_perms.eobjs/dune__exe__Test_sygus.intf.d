test/test_sygus.mli:
