test/test_sygus.ml: Alcotest Array Isa List Minmax Option QCheck QCheck_alcotest Random Sygus
