test/test_distance.mli:
