test/test_baselines_stoke.mli:
