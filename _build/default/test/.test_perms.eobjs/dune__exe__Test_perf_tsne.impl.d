test/test_perf_tsne.ml: Alcotest Array Float Isa List Machine Perf QCheck QCheck_alcotest Random Tsne
