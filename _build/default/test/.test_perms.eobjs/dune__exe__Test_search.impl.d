test/test_search.ml: Alcotest Array Isa List Machine QCheck QCheck_alcotest Search
