let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_optimal_sizes () =
  (* Knuth's optimal comparator counts for n = 1..8. *)
  List.iteri
    (fun i expected ->
      check Alcotest.int
        (Printf.sprintf "size n=%d" (i + 1))
        expected
        (Sortnet.size (Sortnet.optimal (i + 1))))
    [ 0; 1; 3; 5; 9; 12; 16; 19 ]

let test_optimal_sorts () =
  for n = 1 to 8 do
    assert (Sortnet.sorts_all_binary (Sortnet.optimal n))
  done

let test_zero_one_lemma_agrees () =
  (* The 0-1 check and the full permutation check agree on valid and on
     broken networks. *)
  for n = 2 to 6 do
    let good = Sortnet.optimal n in
    assert (Sortnet.sorts_all_binary good = Sortnet.sorts_all_permutations good);
    let broken = Sortnet.make n (List.tl good.Sortnet.comparators) in
    assert (
      Sortnet.sorts_all_binary broken = Sortnet.sorts_all_permutations broken)
  done

let test_bose_nelson () =
  for n = 1 to 8 do
    let net = Sortnet.bose_nelson n in
    assert (Sortnet.sorts_all_binary net)
  done;
  (* Bose-Nelson is size-optimal up to n = 8 for n <= 5. *)
  check Alcotest.int "n=3" 3 (Sortnet.size (Sortnet.bose_nelson 3));
  check Alcotest.int "n=4" 5 (Sortnet.size (Sortnet.bose_nelson 4));
  check Alcotest.int "n=5" 9 (Sortnet.size (Sortnet.bose_nelson 5))

let test_batcher () =
  for n = 1 to 10 do
    assert (n > 8 || Sortnet.sorts_all_binary (Sortnet.batcher n))
  done;
  assert (Sortnet.sorts_all_permutations (Sortnet.batcher 7))

let test_insertion () =
  for n = 1 to 7 do
    assert (Sortnet.sorts_all_binary (Sortnet.insertion n))
  done;
  check Alcotest.int "quadratic size" (6 * 5 / 2) (Sortnet.size (Sortnet.insertion 6))

let test_depth () =
  check Alcotest.int "n=1 depth" 0 (Sortnet.depth (Sortnet.optimal 1));
  check Alcotest.int "n=2 depth" 1 (Sortnet.depth (Sortnet.optimal 2));
  check Alcotest.int "n=3 depth" 3 (Sortnet.depth (Sortnet.optimal 3));
  assert (Sortnet.depth (Sortnet.insertion 6) >= Sortnet.depth (Sortnet.batcher 6))

let test_make_validation () =
  Alcotest.check_raises "reversed comparator"
    (Invalid_argument "Sortnet.make: comparator out of range or not i < j")
    (fun () -> ignore (Sortnet.make 3 [ (1, 0) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Sortnet.make: comparator out of range or not i < j")
    (fun () -> ignore (Sortnet.make 3 [ (0, 3) ]))

let test_apply () =
  check (Alcotest.array Alcotest.int) "sorts a triple" [| 1; 2; 3 |]
    (Sortnet.apply (Sortnet.optimal 3) [| 3; 1; 2 |]);
  check (Alcotest.array Alcotest.int) "stable on duplicates" [| 1; 1; 2 |]
    (Sortnet.apply (Sortnet.optimal 3) [| 2; 1; 1 |])

(* Compiling a network to a cmov kernel preserves its behaviour. *)
let test_to_kernel_sizes () =
  let cfg = Isa.Config.default 3 in
  let k = Sortnet.to_kernel cfg (Sortnet.optimal 3) in
  (* 4 instructions per compare-and-swap (paper, Section 2.1). *)
  check Alcotest.int "3 comparators -> 12 instrs" 12 (Isa.Program.length k)

let test_to_kernel_correct () =
  for n = 2 to 5 do
    let cfg = Isa.Config.default n in
    let k = Sortnet.to_kernel cfg (Sortnet.optimal n) in
    assert (Machine.Exec.sorts_all_permutations cfg k)
  done

let prop_kernel_matches_network =
  QCheck.Test.make ~name:"compiled kernel = network on random inputs" ~count:300
    QCheck.(pair (int_bound 100000) (int_range 2 5))
    (fun (seed, n) ->
      let st = Random.State.make [| seed |] in
      let cfg = Isa.Config.default n in
      let net = Sortnet.optimal n in
      let kernel = Sortnet.to_kernel cfg net in
      let input = Array.init n (fun _ -> Random.State.int st 2000 - 1000) in
      Machine.Exec.run cfg kernel input = Sortnet.apply net input)

let prop_batcher_sorts_random =
  QCheck.Test.make ~name:"batcher sorts random arrays" ~count:300
    QCheck.(pair (int_bound 100000) (int_range 1 16))
    (fun (seed, n) ->
      let st = Random.State.make [| seed |] in
      let input = Array.init n (fun _ -> Random.State.int st 100) in
      Perms.is_sorted (Sortnet.apply (Sortnet.batcher n) input))

let () =
  Alcotest.run "sortnet"
    [
      ( "unit",
        [
          Alcotest.test_case "optimal sizes" `Quick test_optimal_sizes;
          Alcotest.test_case "optimal sorts" `Quick test_optimal_sorts;
          Alcotest.test_case "0-1 lemma" `Quick test_zero_one_lemma_agrees;
          Alcotest.test_case "bose-nelson" `Quick test_bose_nelson;
          Alcotest.test_case "batcher" `Quick test_batcher;
          Alcotest.test_case "insertion" `Quick test_insertion;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "apply" `Quick test_apply;
          Alcotest.test_case "kernel size" `Quick test_to_kernel_sizes;
          Alcotest.test_case "kernel correct" `Quick test_to_kernel_correct;
        ] );
      ( "properties",
        [ qtest prop_kernel_matches_network; qtest prop_batcher_sorts_random ]
      );
    ]
