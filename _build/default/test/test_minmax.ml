let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let cfg3 = Isa.Config.default 3

let test_paper_kernel_sorts () =
  assert (Minmax.Vexec.sorts_all_permutations cfg3 Minmax.paper_sort3);
  check Alcotest.int "8 instructions" 8 (Array.length Minmax.paper_sort3)

let test_paper_kernel_semantics () =
  (* Section 2.1: x2 = max(min(max(c,b),a), min(b,c)); x1 = min(a,min(b,c))
     where a,b,c are the initial xmm0..xmm2. *)
  List.iter
    (fun p ->
      let a = p.(0) and b = p.(1) and c = p.(2) in
      let out = Minmax.Vexec.run cfg3 Minmax.paper_sort3 p in
      check Alcotest.int "x1 = min(a,min(b,c))" (min a (min b c)) out.(0);
      check Alcotest.int "x2 = max(min(max(c,b),a),min(b,c))"
        (max (min (max c b) a) (min b c))
        out.(1))
    (Perms.all 3)

let test_synth_sizes () =
  (* Paper: optimal min/max kernels have 8 (n=3) and 15 (n=4) instructions. *)
  check (Alcotest.option Alcotest.int) "n=2" (Some 3)
    (Minmax.synthesize 2).Minmax.optimal_length;
  check (Alcotest.option Alcotest.int) "n=3" (Some 8)
    (Minmax.synthesize 3).Minmax.optimal_length

let test_synth_n4_size () =
  check (Alcotest.option Alcotest.int) "n=4" (Some 15)
    (Minmax.synthesize 4).Minmax.optimal_length

let test_synth_correct () =
  List.iter
    (fun n ->
      match (Minmax.synthesize n).Minmax.programs with
      | p :: _ ->
          assert (Minmax.Vexec.sorts_all_permutations (Isa.Config.default n) p)
      | [] -> Alcotest.failf "no kernel for n=%d" n)
    [ 2; 3 ]

let test_network_sizes () =
  (* 3 instructions per comparator: 9 / 15 / 27 for n=3..5. *)
  check Alcotest.int "n=3" 9 (Array.length (Minmax.network_kernel 3));
  check Alcotest.int "n=4" 15 (Array.length (Minmax.network_kernel 4));
  check Alcotest.int "n=5" 27 (Array.length (Minmax.network_kernel 5))

let test_network_correct () =
  for n = 2 to 5 do
    assert (
      Minmax.Vexec.sorts_all_permutations (Isa.Config.default n)
        (Minmax.network_kernel n))
  done

let test_synth_beats_network_n3 () =
  (* The paper's headline for Section 5.4: synthesis saves one instruction
     on the network for n = 3 (8 vs 9). *)
  let synth = Option.get (Minmax.synthesize 3).Minmax.optimal_length in
  assert (synth < Array.length (Minmax.network_kernel 3))

let test_all_solutions_enumeration () =
  let r =
    Minmax.synthesize
      ~opts:{ Minmax.default with Minmax.all_solutions = true; cut = Some 2.0 }
      3
  in
  assert (r.Minmax.solution_count >= List.length r.Minmax.programs);
  assert (List.length r.Minmax.programs > 1);
  List.iter
    (fun p -> assert (Minmax.Vexec.sorts_all_permutations cfg3 p))
    r.Minmax.programs;
  (* All enumerated programs distinct. *)
  check Alcotest.int "distinct"
    (List.length r.Minmax.programs)
    (List.length (List.sort_uniq compare r.Minmax.programs))

let test_max_len_bound () =
  let r = Minmax.synthesize ~opts:{ Minmax.default with Minmax.max_len = Some 7 } 3 in
  check (Alcotest.option Alcotest.int) "no length-7 kernel" None
    r.Minmax.optimal_length

let test_to_sorter () =
  match (Minmax.synthesize 3).Minmax.programs with
  | p :: _ -> assert (Perf.Compile.verify (Minmax.to_sorter 3 p))
  | [] -> Alcotest.fail "no kernel"

let test_x86_rendering () =
  let s = Minmax.Vexec.to_x86 cfg3 Minmax.paper_sort3 in
  assert (String.length s > 0);
  (* The paper's example uses xmm7 as the temporary. *)
  let contains needle hay =
    let ln = String.length needle and lh = String.length hay in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  assert (contains "movdqa xmm7, xmm1" s);
  assert (contains "pminsd" s);
  assert (contains "pmaxsd" s)

let prop_packed_matches_reference =
  let instrs = Minmax.Vinstr.all cfg3 in
  QCheck.Test.make ~name:"packed minmax executor = reference" ~count:300
    QCheck.(pair (int_bound 100000) (int_range 0 12))
    (fun (seed, len) ->
      let st = Random.State.make [| seed |] in
      let p =
        Array.init len (fun _ -> instrs.(Random.State.int st (Array.length instrs)))
      in
      List.for_all
        (fun perm ->
          let code =
            Minmax.Vexec.run_code p (Minmax.Vexec.of_permutation cfg3 perm)
          in
          let packed = Array.init 3 (fun k -> Minmax.Vexec.reg code k) in
          packed = Minmax.Vexec.run cfg3 p perm)
        (Perms.all 3))

let prop_synthesized_sorts_arbitrary_ints =
  let kernel =
    match (Minmax.synthesize 3).Minmax.programs with
    | p :: _ -> p
    | [] -> failwith "no kernel"
  in
  QCheck.Test.make ~name:"minmax kernel sorts arbitrary ints" ~count:300
    QCheck.(triple small_signed_int small_signed_int small_signed_int)
    (fun (a, b, c) ->
      let input = [| a; b; c |] in
      let out = Minmax.Vexec.run cfg3 kernel input in
      Machine.Exec.output_correct ~input ~output:out)

let () =
  Alcotest.run "minmax"
    [
      ( "unit",
        [
          Alcotest.test_case "paper kernel sorts" `Quick test_paper_kernel_sorts;
          Alcotest.test_case "paper kernel semantics" `Quick
            test_paper_kernel_semantics;
          Alcotest.test_case "synthesis sizes" `Quick test_synth_sizes;
          Alcotest.test_case "synthesis n=4 size" `Slow test_synth_n4_size;
          Alcotest.test_case "synthesis correct" `Quick test_synth_correct;
          Alcotest.test_case "network sizes" `Quick test_network_sizes;
          Alcotest.test_case "network correct" `Quick test_network_correct;
          Alcotest.test_case "synth beats network" `Quick test_synth_beats_network_n3;
          Alcotest.test_case "all solutions" `Quick test_all_solutions_enumeration;
          Alcotest.test_case "length bound" `Quick test_max_len_bound;
          Alcotest.test_case "to_sorter" `Quick test_to_sorter;
          Alcotest.test_case "x86 rendering" `Quick test_x86_rendering;
        ] );
      ( "properties",
        [ qtest prop_packed_matches_reference; qtest prop_synthesized_sorts_arbitrary_ints ]
      );
    ]
