let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let get n =
  match Sygus.synthesize n with
  | Some r -> r
  | None -> Alcotest.failf "SyGuS failed for n=%d" n

let test_n2_expressions () =
  let r = get 2 in
  check Alcotest.int "out1 is one min" 1 (Sygus.size r.Sygus.outputs.(0));
  check Alcotest.int "out2 is one max" 1 (Sygus.size r.Sygus.outputs.(1))

let test_n3_median_size () =
  (* The median of three needs at least 4 min/max operators; enumerative
     SyGuS with observational dedup finds a size-4 formula. *)
  let r = get 3 in
  check Alcotest.int "min chain" 2 (Sygus.size r.Sygus.outputs.(0));
  check Alcotest.int "median" 4 (Sygus.size r.Sygus.outputs.(1));
  check Alcotest.int "max chain" 2 (Sygus.size r.Sygus.outputs.(2))

let test_outputs_compute_order_statistics () =
  List.iter
    (fun n ->
      let r = get n in
      let st = Random.State.make [| 31 * n |] in
      for _ = 1 to 200 do
        let a = Array.init n (fun _ -> Random.State.int st 1000 - 500) in
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Array.iteri
          (fun k e ->
            if Sygus.eval e a <> sorted.(k) then
              Alcotest.failf "output %d wrong for n=%d" k n)
          r.Sygus.outputs
      done)
    [ 2; 3; 4 ]

let test_budget_exhaustion () =
  (* A size budget of 1 cannot express the n=3 median. *)
  match Sygus.synthesize ~max_size:1 3 with
  | None -> ()
  | Some _ -> Alcotest.fail "size-1 budget cannot suffice for n=3"

let test_lower_n2 () =
  let r = get 2 in
  match Sygus.lower (Isa.Config.default 2) r with
  | Some p ->
      assert (Minmax.Vexec.sorts_all_permutations (Isa.Config.default 2) p);
      (* Lowered SyGuS code is strictly longer than the optimal kernel. *)
      let opt = Option.get (Minmax.synthesize 2).Minmax.optimal_length in
      assert (Array.length p > opt)
  | None -> Alcotest.fail "n=2 lowering should fit"

let test_lower_n3_register_pressure () =
  (* With a single scratch register the three order-statistic expressions
     cannot be scheduled — the machine-level wall the paper's SyGuS hits. *)
  match Sygus.lower (Isa.Config.default 3) (get 3) with
  | None -> ()
  | Some _ -> Alcotest.fail "n=3 lowering should spill with m=1"

let test_lower_n3_even_more_scratch_spills () =
  (* Even three scratch registers do not rescue the naive tree scheduler:
     the median tree needs two simultaneously live temporaries on top of
     the two parked outputs. Turning the SyGuS expressions into compact
     code needs exactly the machine-level reasoning (operand ordering,
     result reuse, destructive updates) that the enumerative kernel search
     performs and functional synthesis cannot see. *)
  let cfg = Isa.Config.make ~n:3 ~m:3 in
  match Sygus.lower cfg (get 3) with
  | None -> ()
  | Some p ->
      (* If a future smarter scheduler makes it fit, it must be correct and
         still longer than the optimal kernel. *)
      assert (Minmax.Vexec.sorts_all_permutations cfg p);
      assert (Array.length p > 8)

let test_unbounded_lowering_counts () =
  let r = get 3 in
  (* 2 + 4 + 2 operators + 3 root copies. *)
  check Alcotest.int "unbounded" 11 (Sygus.lower_unbounded r)

let test_to_string () =
  check Alcotest.string "pretty" "min(a1, max(a2, a3))"
    (Sygus.to_string (Sygus.Min (Sygus.Input 0, Sygus.Max (Sygus.Input 1, Sygus.Input 2))))

let prop_eval_monotone =
  (* min/max expressions are monotone: raising any input never lowers the
     output. *)
  QCheck.Test.make ~name:"expressions are monotone" ~count:300
    QCheck.(pair (int_bound 100000) (int_bound 2))
    (fun (seed, idx) ->
      let r = get 3 in
      let st = Random.State.make [| seed |] in
      let a = Array.init 3 (fun _ -> Random.State.int st 100) in
      let b = Array.copy a in
      b.(idx) <- b.(idx) + 1 + Random.State.int st 10;
      Array.for_all
        (fun e -> Sygus.eval e b >= Sygus.eval e a)
        r.Sygus.outputs)

let () =
  Alcotest.run "sygus"
    [
      ( "unit",
        [
          Alcotest.test_case "n=2 expressions" `Quick test_n2_expressions;
          Alcotest.test_case "n=3 median size" `Quick test_n3_median_size;
          Alcotest.test_case "order statistics" `Quick
            test_outputs_compute_order_statistics;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "lower n=2" `Quick test_lower_n2;
          Alcotest.test_case "lower n=3 spills" `Quick
            test_lower_n3_register_pressure;
          Alcotest.test_case "lower n=3, m=3 still spills" `Quick
            test_lower_n3_even_more_scratch_spills;
          Alcotest.test_case "unbounded count" `Quick test_unbounded_lowering_counts;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ("properties", [ qtest prop_eval_monotone ]);
    ]
