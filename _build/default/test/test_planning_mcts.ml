let check = Alcotest.check

let verify n p = Machine.Exec.sorts_all_permutations (Isa.Config.default n) p

(* --- Planner --- *)

let test_blind_uniform_n2_optimal () =
  let r =
    Planning.Planner.solve ~heuristic:Planning.Planner.Blind
      ~strategy:Planning.Planner.Uniform 2
  in
  match r.Planning.Planner.plan with
  | Some p ->
      check Alcotest.int "optimal plan length" 4 (Array.length p);
      assert (verify 2 p)
  | None -> Alcotest.fail "blind search must solve n=2"

let test_goal_count_greedy_n2 () =
  let r = Planning.Planner.solve ~max_expansions:200_000 2 in
  match r.Planning.Planner.plan with
  | Some p -> assert (verify 2 p)
  | None -> Alcotest.fail "greedy goal-count should solve n=2"

let test_goal_count_plateaus_on_n3 () =
  (* The goal-count heuristic is too flat for n=3: almost no state has any
     register file fully sorted until the very end, so greedy search
     wanders. This mirrors the paper's finding that only planners with
     strong heuristics (LAMA) solve n=3 quickly. *)
  let r = Planning.Planner.solve ~max_expansions:50_000 3 in
  assert (r.Planning.Planner.plan = None)

let test_greedy_pdb_n3_fast_but_long () =
  (* Greedy PDB finds a plan quickly but without optimality. *)
  let r =
    Planning.Planner.solve ~heuristic:Planning.Planner.Pdb
      ~strategy:Planning.Planner.Greedy ~max_expansions:200_000 3
  in
  match r.Planning.Planner.plan with
  | Some p ->
      assert (verify 3 p);
      assert (Array.length p >= 11)
  | None -> Alcotest.fail "greedy pdb should solve n=3"

let test_pdb_wastar_n3 () =
  let r =
    Planning.Planner.solve ~heuristic:Planning.Planner.Pdb
      ~strategy:(Planning.Planner.Wastar 2) ~max_expansions:1_000_000 3
  in
  match r.Planning.Planner.plan with
  | Some p -> assert (verify 3 p)
  | None -> Alcotest.fail "pdb wA* should solve n=3"

let test_expansion_budget_respected () =
  let r = Planning.Planner.solve ~max_expansions:10 3 in
  assert (r.Planning.Planner.plan = None);
  assert (r.Planning.Planner.expanded <= 11)

let test_max_len_bound () =
  (* With a length bound below the optimum, no plan exists. *)
  let r =
    Planning.Planner.solve ~heuristic:Planning.Planner.Blind
      ~strategy:Planning.Planner.Uniform ~max_len:3 2
  in
  assert (r.Planning.Planner.plan = None)

(* --- PDDL emitters --- *)

let test_pddl_wellformed () =
  let cfg = Isa.Config.default 3 in
  let dom = Planning.Pddl.domain cfg in
  let prob = Planning.Pddl.problem cfg in
  List.iter
    (fun (hay, needle) ->
      let found =
        let ln = String.length needle and lh = String.length hay in
        let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
        go 0
      in
      if not found then Alcotest.failf "missing %S" needle)
    [
      (dom, "(define (domain sorting-kernels)");
      (dom, ":action cmovg");
      (dom, ":conditional-effects");
      (prob, "(define (problem sort-3)");
      (prob, "(holds p0 r0 v1)");
      (prob, "(:goal");
    ];
  (* Balanced parentheses. *)
  let balanced s =
    let d = ref 0 in
    String.iter (fun c -> if c = '(' then incr d else if c = ')' then decr d) s;
    !d = 0
  in
  assert (balanced dom);
  assert (balanced prob)

(* --- MCTS --- *)

let test_mcts_n2_finds_kernel () =
  let r = Mcts.search ~opts:{ (Mcts.default 2) with Mcts.simulations = 50_000 } 2 in
  assert r.Mcts.correct;
  match r.Mcts.best with
  | Some p -> assert (verify 2 p)
  | None -> Alcotest.fail "MCTS should find an n=2 kernel"

let test_mcts_budget_scaling () =
  (* More simulations never yields a longer best kernel (best only
     improves). *)
  let len sims =
    match
      (Mcts.search ~opts:{ (Mcts.default 2) with Mcts.simulations = sims } 2)
        .Mcts.best_length
    with
    | Some l -> l
    | None -> max_int
  in
  assert (len 60_000 <= len 2_000)

let test_mcts_reports_tree_growth () =
  let r = Mcts.search ~opts:{ (Mcts.default 2) with Mcts.simulations = 5_000 } 2 in
  assert (r.Mcts.tree_nodes > 1);
  assert (r.Mcts.simulations_run = 5_000)

let () =
  Alcotest.run "planning-mcts"
    [
      ( "planner",
        [
          Alcotest.test_case "blind uniform n=2 optimal" `Quick
            test_blind_uniform_n2_optimal;
          Alcotest.test_case "goal-count greedy n=2" `Quick
            test_goal_count_greedy_n2;
          Alcotest.test_case "goal-count plateaus on n=3" `Slow
            test_goal_count_plateaus_on_n3;
          Alcotest.test_case "greedy pdb n=3" `Slow test_greedy_pdb_n3_fast_but_long;
          Alcotest.test_case "pdb wA* n=3" `Slow test_pdb_wastar_n3;
          Alcotest.test_case "expansion budget" `Quick test_expansion_budget_respected;
          Alcotest.test_case "length bound" `Quick test_max_len_bound;
        ] );
      ("pddl", [ Alcotest.test_case "emitters well-formed" `Quick test_pddl_wellformed ]);
      ( "mcts",
        [
          Alcotest.test_case "n=2 finds kernel" `Slow test_mcts_n2_finds_kernel;
          Alcotest.test_case "budget scaling" `Slow test_mcts_budget_scaling;
          Alcotest.test_case "tree growth" `Quick test_mcts_reports_tree_growth;
        ] );
    ]
