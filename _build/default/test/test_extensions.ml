(* Tests for the extension surfaces: min/max solver encodings, the MiniZinc
   emitter, the pipeline simulator, the parallel search engine, and the
   artifact writer. *)

let check = Alcotest.check
let cfg3 = Isa.Config.default 3

(* --- SMT min/max --- *)

let test_smt_minmax_n2 () =
  match (Smtlite.Vmodel.synth_cegis ~len:3 2).Smtlite.Vmodel.outcome with
  | Smtlite.Vmodel.Found p ->
      check Alcotest.int "3 instructions" 3 (Array.length p);
      assert (Minmax.Vexec.sorts_all_permutations (Isa.Config.default 2) p)
  | _ -> Alcotest.fail "SMT should solve minmax n=2"

let test_smt_minmax_n2_len2_unsat () =
  match (Smtlite.Vmodel.synth_perm ~len:2 2).Smtlite.Vmodel.outcome with
  | Smtlite.Vmodel.Unsat_length -> ()
  | _ -> Alcotest.fail "no 2-instruction minmax kernel for n=2"

let test_smt_minmax_find_min_length () =
  let results = Smtlite.Vmodel.find_min_length ~max_len:5 2 in
  match List.rev results with
  | (3, { Smtlite.Vmodel.outcome = Smtlite.Vmodel.Found _; _ }) :: _ -> ()
  | _ -> Alcotest.fail "minimum should be 3"

(* --- CP min/max --- *)

let test_cp_minmax_n2 () =
  match (Csp.Vmodel.synth ~len:3 2).Csp.Vmodel.outcome with
  | Csp.Vmodel.Found p ->
      assert (Minmax.Vexec.sorts_all_permutations (Isa.Config.default 2) p)
  | _ -> Alcotest.fail "CP should solve minmax n=2"

let test_cp_minmax_len2_exhausted () =
  match (Csp.Vmodel.synth ~len:2 2).Csp.Vmodel.outcome with
  | Csp.Vmodel.Exhausted -> ()
  | _ -> Alcotest.fail "no 2-instruction minmax kernel"

let test_cp_minmax_agrees_with_enum () =
  (* The CP-found minimum equals the enumerative search's. *)
  let cp_len =
    match List.rev (Csp.Vmodel.find_min_length ~max_len:5 2) with
    | (l, { Csp.Vmodel.outcome = Csp.Vmodel.Found _; _ }) :: _ -> l
    | _ -> -1
  in
  check (Alcotest.option Alcotest.int) "both 3" (Some cp_len)
    (Minmax.synthesize 2).Minmax.optimal_length

(* --- MiniZinc emitter --- *)

let contains needle hay =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_minizinc_emits_model () =
  let m = Csp.Minizinc.emit ~len:11 3 in
  List.iter
    (fun needle ->
      if not (contains needle m) then Alcotest.failf "missing %S" needle)
    [
      "int: LEN = 11;";
      "array[STEP] of var 0..3: op;";
      "constraint forall (t in STEP) (dst[t] != src[t]);";
      "solve satisfy;";
      "v[0, 1, 1] = 1";
    ]

let test_minizinc_goal_variants_differ () =
  let exact =
    Csp.Minizinc.emit
      ~opts:{ Csp.Model.default with Csp.Model.goal = Csp.Model.Goal_exact }
      ~len:4 2
  in
  let asc = Csp.Minizinc.emit ~len:4 2 in
  assert (exact <> asc);
  assert (contains "v[LEN, p, r] = r" exact);
  assert (contains "v[LEN, p, r] <= v[LEN, p, r+1]" asc)

(* --- Pipeline simulator --- *)

let test_pipeline_paper_kernel () =
  let r = Perf.Pipeline.run ~iterations:50 cfg3 Perf.Kernels.paper_sort3 in
  assert (r.Perf.Pipeline.cycles > 0);
  assert (r.Perf.Pipeline.ipc > 0.);
  assert (r.Perf.Pipeline.cycles_per_iteration > 0.)

let test_pipeline_empty_program () =
  let r = Perf.Pipeline.run cfg3 [||] in
  check Alcotest.int "no cycles" 0 r.Perf.Pipeline.cycles

let test_pipeline_synth_not_worse_than_network () =
  (* Fewer instructions with comparable structure: the synthesized kernel's
     steady-state throughput must not lose to the 12-instruction network. *)
  let synth = Perf.Pipeline.run ~iterations:200 cfg3 Perf.Kernels.paper_sort3 in
  let net = Perf.Pipeline.run ~iterations:200 cfg3 (Perf.Kernels.network 3) in
  assert (
    synth.Perf.Pipeline.cycles_per_iteration
    <= net.Perf.Pipeline.cycles_per_iteration +. 0.001)

let test_pipeline_issue_width_matters () =
  let narrow = { Perf.Pipeline.default_core with Perf.Pipeline.issue_width = 1 } in
  let wide = Perf.Pipeline.default_core in
  let rn = Perf.Pipeline.run ~core:narrow ~iterations:100 cfg3 Perf.Kernels.paper_sort3 in
  let rw = Perf.Pipeline.run ~core:wide ~iterations:100 cfg3 Perf.Kernels.paper_sort3 in
  assert (rn.Perf.Pipeline.cycles >= rw.Perf.Pipeline.cycles)

let test_pipeline_single_iteration_latency_bound () =
  (* One iteration can never finish faster than the critical path. *)
  let a = Perf.Cost.analyze cfg3 Perf.Kernels.paper_sort3 in
  let r = Perf.Pipeline.run ~iterations:1 cfg3 Perf.Kernels.paper_sort3 in
  assert (r.Perf.Pipeline.cycles >= a.Perf.Cost.critical_path)

let test_compare_kernels_order () =
  let rs =
    Perf.Pipeline.compare_kernels cfg3
      [ ("a", Perf.Kernels.paper_sort3); ("b", Perf.Kernels.network 3) ]
  in
  check (Alcotest.list Alcotest.string) "names" [ "a"; "b" ] (List.map fst rs)

(* --- Parallel search --- *)

let test_parallel_n2 () =
  let r = Search.run_parallel ~domains:2 (Isa.Config.default 2) in
  check (Alcotest.option Alcotest.int) "optimal 4" (Some 4) r.Search.optimal_length;
  match r.Search.programs with
  | p :: _ -> assert (Machine.Exec.sorts_all_permutations (Isa.Config.default 2) p)
  | [] -> Alcotest.fail "no program"

let test_parallel_matches_sequential_n3 () =
  let opts = { Search.best with Search.action_filter = Search.All_actions } in
  let seq =
    Search.run ~opts:{ opts with Search.engine = Search.Level_sync }
      (Isa.Config.default 3)
  in
  let par = Search.run_parallel ~opts ~domains:3 (Isa.Config.default 3) in
  check (Alcotest.option Alcotest.int) "same optimal length"
    seq.Search.optimal_length par.Search.optimal_length;
  (* Expansion accounting differs at the final level (the parallel engine
     batches a whole level before noticing a solution), so only demand the
     same order of magnitude. *)
  assert (
    par.Search.stats.Search.expanded <= 2 * seq.Search.stats.Search.expanded);
  assert (
    seq.Search.stats.Search.expanded <= 2 * par.Search.stats.Search.expanded)

let test_parallel_prove_none () =
  let r =
    Search.run_parallel ~domains:2 ~mode:(Search.Prove_none 3)
      (Isa.Config.default 2)
  in
  check (Alcotest.option Alcotest.int) "no kernel of length 3" None
    r.Search.optimal_length

(* --- Artifacts --- *)

let test_artifacts_written () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "sortsynth_artifacts" in
  let files = Harness.Artifacts.write ~full:false dir in
  assert (List.mem "sol3_h1.txt" files);
  assert (List.mem "domain.pddl" files);
  assert (List.mem "sort3_len11.mzn" files);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      assert (Sys.file_exists path);
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      assert (len > 0))
    files;
  (* The dumped kernel parses back and sorts. *)
  let ic = open_in (Filename.concat dir "sol3_h1.txt") in
  let buf = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Isa.Program.of_string cfg3 buf with
  | Ok p -> assert (Machine.Exec.sorts_all_permutations cfg3 p)
  | Error e -> Alcotest.fail e


(* --- 0-1 lemma gap (Section 2.3) --- *)

let test_zeroone_networks_equivalent () =
  (* For network-compiled kernels, binary correctness and permutation
     correctness agree (the 0-1 principle holds for compare-and-swap
     structure). *)
  for n = 2 to 4 do
    let cfg = Isa.Config.default n in
    let k = Sortnet.to_kernel cfg (Sortnet.optimal n) in
    assert (Machine.Zeroone.sorts_all_binary cfg k);
    assert (Machine.Zeroone.zero_one_gap cfg k = `Equivalent)
  done

let test_zeroone_gap_exists () =
  (* The paper's Section 2.3 claim: there are cmov programs correct on all
     binary inputs yet wrong on permutations, so the 0-1 lemma cannot
     replace the n! suite. *)
  let cfg = Isa.Config.default 2 in
  match Machine.Zeroone.find_counterexample_kernel cfg with
  | Some (p, perm) ->
      assert (Machine.Zeroone.sorts_all_binary cfg p);
      let out = Machine.Exec.run cfg p perm in
      assert (not (Perms.is_identity out))
  | None -> Alcotest.fail "gap witness should exist for n=2"

(* --- Hybrid kernels (Section 5.4) --- *)

let test_hybrid_n2_optimum () =
  let r = Hybrid.synthesize 2 in
  match r.Hybrid.programs with
  | p :: _ ->
      assert (Hybrid.sorts_all_permutations (Isa.Config.default 2) p);
      (* The hybrid optimum cannot beat the pure cmov optimum (4): any use
         of the vector file pays transfers. *)
      check Alcotest.int "hybrid optimum = cmov optimum" 4 (Array.length p)
  | [] -> Alcotest.fail "hybrid synthesis failed for n=2"

let test_hybrid_transfer_accounting () =
  let p =
    [| Hybrid.To_vec (0, 0); Hybrid.Vec (Minmax.Vinstr.pmin 0 1);
       Hybrid.To_gp (0, 0); Hybrid.Gp (Isa.Instr.mov 1 0) |]
  in
  check Alcotest.int "two transfers" 2 (Hybrid.transfer_count p)

let test_hybrid_run_mixed_program () =
  (* Move both values into the vector file, min/max there, move back:
     a hand-written hybrid sort for n=2 (3-instr CAS + 4 transfers). *)
  let cfg = Isa.Config.default 2 in
  let p =
    [|
      Hybrid.To_vec (0, 0); Hybrid.To_vec (1, 1);
      Hybrid.Vec (Minmax.Vinstr.movdqa 2 0);
      Hybrid.Vec (Minmax.Vinstr.pmin 0 1);
      Hybrid.Vec (Minmax.Vinstr.pmax 1 2);
      Hybrid.To_gp (0, 0); Hybrid.To_gp (1, 1);
    |]
  in
  assert (Hybrid.sorts_all_permutations cfg p);
  (* ... and it is longer than the pure cmov kernel (4), demonstrating the
     paper's point that hybrids are not competitive. *)
  assert (Array.length p > 4)

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Search.Heap.create () in
  List.iter (fun (p, v) -> Search.Heap.push h p v) [ (5, "e"); (1, "a"); (3, "c"); (1, "b") ];
  let pop () = match Search.Heap.pop h with Some (_, v) -> v | None -> "-" in
  (* Equal priorities pop FIFO. *)
  check Alcotest.string "a first" "a" (pop ());
  check Alcotest.string "b second (FIFO tie)" "b" (pop ());
  check Alcotest.string "c third" "c" (pop ());
  check Alcotest.string "e last" "e" (pop ());
  assert (Search.Heap.pop h = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in priority order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun xs ->
      let h = Search.Heap.create () in
      List.iter (fun x -> Search.Heap.push h x x) xs;
      let rec drain acc =
        match Search.Heap.pop h with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let () =
  Alcotest.run "extensions"
    [
      ( "smt-minmax",
        [
          Alcotest.test_case "n=2 finds 3" `Quick test_smt_minmax_n2;
          Alcotest.test_case "len 2 unsat" `Quick test_smt_minmax_n2_len2_unsat;
          Alcotest.test_case "min length probe" `Quick test_smt_minmax_find_min_length;
        ] );
      ( "cp-minmax",
        [
          Alcotest.test_case "n=2 finds 3" `Quick test_cp_minmax_n2;
          Alcotest.test_case "len 2 exhausted" `Quick test_cp_minmax_len2_exhausted;
          Alcotest.test_case "agrees with enum" `Quick test_cp_minmax_agrees_with_enum;
        ] );
      ( "minizinc",
        [
          Alcotest.test_case "emits model" `Quick test_minizinc_emits_model;
          Alcotest.test_case "goal variants" `Quick test_minizinc_goal_variants_differ;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "paper kernel" `Quick test_pipeline_paper_kernel;
          Alcotest.test_case "empty program" `Quick test_pipeline_empty_program;
          Alcotest.test_case "synth <= network" `Quick
            test_pipeline_synth_not_worse_than_network;
          Alcotest.test_case "issue width" `Quick test_pipeline_issue_width_matters;
          Alcotest.test_case "latency bound" `Quick
            test_pipeline_single_iteration_latency_bound;
          Alcotest.test_case "compare order" `Quick test_compare_kernels_order;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "n=2" `Quick test_parallel_n2;
          Alcotest.test_case "matches sequential n=3" `Slow
            test_parallel_matches_sequential_n3;
          Alcotest.test_case "prove none" `Quick test_parallel_prove_none;
        ] );
      ( "artifacts",
        [ Alcotest.test_case "files written" `Slow test_artifacts_written ] );
      ( "zeroone",
        [
          Alcotest.test_case "networks equivalent" `Quick
            test_zeroone_networks_equivalent;
          Alcotest.test_case "gap witness exists" `Quick test_zeroone_gap_exists;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "n=2 optimum" `Slow test_hybrid_n2_optimum;
          Alcotest.test_case "transfer accounting" `Quick
            test_hybrid_transfer_accounting;
          Alcotest.test_case "mixed program" `Quick test_hybrid_run_mixed_program;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
    ]
