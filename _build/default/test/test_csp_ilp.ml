let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Fd: the generic finite-domain solver --- *)

let test_fd_basic_propagation () =
  let t = Csp.Fd.create () in
  let x = Csp.Fd.new_var t ~lo:0 ~hi:5 in
  let y = Csp.Fd.new_var t ~lo:0 ~hi:5 in
  (* x = y + 3, via a propagator; solutions: (3,0) (4,1) (5,2). *)
  Csp.Fd.post t ~watch:[ x; y ] (fun t ->
      if Csp.Fd.is_fixed t y then Csp.Fd.assign t x (Csp.Fd.value t y + 3)
      else if Csp.Fd.is_fixed t x then Csp.Fd.assign t y (Csp.Fd.value t x - 3)
      else true);
  let count = ref 0 in
  let r =
    Csp.Fd.solve
      ~on_solution:(fun t ->
        assert (Csp.Fd.value t x = Csp.Fd.value t y + 3);
        incr count;
        false)
      t
  in
  check (Alcotest.option Alcotest.bool) "exhausted" (Some false) r;
  check Alcotest.int "solutions" 3 !count

let test_fd_wipeout_detected () =
  let t = Csp.Fd.create () in
  let x = Csp.Fd.new_var t ~lo:0 ~hi:2 in
  Csp.Fd.post t (fun t -> Csp.Fd.assign t x 1);
  Csp.Fd.post t (fun t -> Csp.Fd.remove_value t x 1);
  let r = Csp.Fd.solve t in
  check (Alcotest.option Alcotest.bool) "no solution" (Some false) r

let test_fd_node_limit () =
  let t = Csp.Fd.create () in
  for _ = 1 to 10 do
    ignore (Csp.Fd.new_var t ~lo:0 ~hi:9)
  done;
  let r = Csp.Fd.solve ~on_solution:(fun _ -> false) ~node_limit:50 t in
  check (Alcotest.option Alcotest.bool) "limit hit" None r

let test_fd_dom_values () =
  let t = Csp.Fd.create () in
  let x = Csp.Fd.new_var t ~lo:2 ~hi:4 in
  check (Alcotest.list Alcotest.int) "initial domain" [ 2; 3; 4 ]
    (Csp.Fd.dom_values t x);
  assert (Csp.Fd.remove_value t x 3);
  check (Alcotest.list Alcotest.int) "pruned" [ 2; 4 ] (Csp.Fd.dom_values t x)

(* --- Model: CP synthesis --- *)

let test_cp_n2_finds_4 () =
  match (Csp.Model.synth ~len:4 2).Csp.Model.outcome with
  | Csp.Model.Found p ->
      check Alcotest.int "length" 4 (Array.length p);
      assert (Machine.Exec.sorts_all_permutations (Isa.Config.default 2) p)
  | _ -> Alcotest.fail "CP should find an n=2 kernel"

let test_cp_n2_len3_exhausted () =
  match (Csp.Model.synth ~len:3 2).Csp.Model.outcome with
  | Csp.Model.Exhausted -> ()
  | _ -> Alcotest.fail "no length-3 kernel exists"

let test_cp_all_solutions_match_enum () =
  let cp = Csp.Model.synth ~all_solutions:true ~len:4 2 in
  let enum =
    Search.run_mode
      ~opts:{ Search.default with Search.engine = Search.Level_sync }
      ~mode:Search.All_optimal (Isa.Config.default 2)
  in
  check Alcotest.int "CP count = enum count" enum.Search.solution_count
    (List.length cp.Csp.Model.solutions);
  List.iter
    (fun p -> assert (Machine.Exec.sorts_all_permutations (Isa.Config.default 2) p))
    cp.Csp.Model.solutions

let test_cp_goal_variants_agree () =
  List.iter
    (fun goal ->
      match
        (Csp.Model.synth ~opts:{ Csp.Model.default with Csp.Model.goal } ~len:4 2)
          .Csp.Model.outcome
      with
      | Csp.Model.Found p ->
          assert (Machine.Exec.sorts_all_permutations (Isa.Config.default 2) p)
      | _ -> Alcotest.fail "goal variant failed")
    [ Csp.Model.Goal_exact; Csp.Model.Goal_ascending_present ]

let test_cp_node_limit () =
  match (Csp.Model.synth ~node_limit:50 ~len:11 3).Csp.Model.outcome with
  | Csp.Model.Node_limit -> ()
  | _ -> Alcotest.fail "n=3 in 50 nodes is impossible"

let test_cp_heuristics_reduce_nodes () =
  let nodes opts = (Csp.Model.synth ~opts ~len:4 2).Csp.Model.nodes in
  let with_h = nodes Csp.Model.default in
  let without =
    nodes
      {
        Csp.Model.default with
        Csp.Model.no_consecutive_cmp = false;
        cmp_symmetry = false;
        erasure_pruning = false;
      }
  in
  assert (with_h <= without)

(* --- ILP --- *)

let test_ilp_solver_basic () =
  let s = Ilp.Solver.create () in
  let x = Ilp.Solver.new_var s in
  let y = Ilp.Solver.new_var s in
  (* x + y >= 1, minimize x + 2y -> x=1, y=0. *)
  Ilp.Solver.add_ge s [ (1, x); (1, y) ] 1;
  Ilp.Solver.set_objective s [ (1, x); (2, y) ];
  match Ilp.Solver.solve s with
  | Ilp.Solver.Optimal (obj, a) ->
      check Alcotest.int "objective" 1 obj;
      assert a.(x);
      assert (not a.(y))
  | _ -> Alcotest.fail "should be optimal"

let test_ilp_infeasible () =
  let s = Ilp.Solver.create () in
  let x = Ilp.Solver.new_var s in
  Ilp.Solver.add_ge s [ (1, x) ] 1;
  Ilp.Solver.add_le s [ (1, x) ] 0;
  match Ilp.Solver.solve s with
  | Ilp.Solver.Infeasible -> ()
  | _ -> Alcotest.fail "should be infeasible"

let test_ilp_equality () =
  let s = Ilp.Solver.create () in
  let xs = List.init 4 (fun _ -> Ilp.Solver.new_var s) in
  (* Exactly two of four set; minimize nothing (feasibility). *)
  Ilp.Solver.add_eq s (List.map (fun v -> (1, v)) xs) 2;
  match Ilp.Solver.solve s with
  | Ilp.Solver.Optimal (_, a) ->
      check Alcotest.int "two set" 2
        (List.length (List.filter (fun v -> a.(v)) xs))
  | _ -> Alcotest.fail "should be feasible"

let test_ilp_model_n2 () =
  match (Ilp.Model.synth ~len:4 2).Ilp.Model.outcome with
  | Ilp.Model.Found p ->
      assert (Machine.Exec.sorts_all_permutations (Isa.Config.default 2) p)
  | _ -> Alcotest.fail "ILP should solve n=2"

let test_ilp_model_n2_len3_infeasible () =
  match (Ilp.Model.synth ~len:3 2).Ilp.Model.outcome with
  | Ilp.Model.Infeasible -> ()
  | _ -> Alcotest.fail "length 3 should be infeasible"

let prop_ilp_knapsack_vs_brute =
  QCheck.Test.make ~name:"ILP optimum matches brute force on random knapsacks"
    ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 2 + Random.State.int st 6 in
      let weights = Array.init n (fun _ -> 1 + Random.State.int st 9) in
      let values = Array.init n (fun _ -> 1 + Random.State.int st 9) in
      let cap = 5 + Random.State.int st 15 in
      (* maximize value = minimize -value, subject to weight <= cap. *)
      let s = Ilp.Solver.create () in
      let xs = Array.init n (fun _ -> Ilp.Solver.new_var s) in
      Ilp.Solver.add_le s (Array.to_list (Array.mapi (fun i x -> (weights.(i), x)) xs)) cap;
      Ilp.Solver.set_objective s
        (Array.to_list (Array.mapi (fun i x -> (-values.(i), x)) xs));
      let brute =
        let best = ref 0 in
        for mask = 0 to (1 lsl n) - 1 do
          let w = ref 0 and v = ref 0 in
          for i = 0 to n - 1 do
            if mask land (1 lsl i) <> 0 then begin
              w := !w + weights.(i);
              v := !v + values.(i)
            end
          done;
          if !w <= cap && !v > !best then best := !v
        done;
        !best
      in
      match Ilp.Solver.solve s with
      | Ilp.Solver.Optimal (obj, _) -> -obj = brute
      | _ -> false)

let () =
  Alcotest.run "csp-ilp"
    [
      ( "fd",
        [
          Alcotest.test_case "propagation" `Quick test_fd_basic_propagation;
          Alcotest.test_case "wipeout" `Quick test_fd_wipeout_detected;
          Alcotest.test_case "node limit" `Quick test_fd_node_limit;
          Alcotest.test_case "domains" `Quick test_fd_dom_values;
        ] );
      ( "cp-model",
        [
          Alcotest.test_case "n=2 finds 4" `Quick test_cp_n2_finds_4;
          Alcotest.test_case "n=2 len 3 exhausted" `Quick test_cp_n2_len3_exhausted;
          Alcotest.test_case "all-solutions = enum" `Quick
            test_cp_all_solutions_match_enum;
          Alcotest.test_case "goal variants" `Quick test_cp_goal_variants_agree;
          Alcotest.test_case "node limit" `Quick test_cp_node_limit;
          Alcotest.test_case "heuristics reduce nodes" `Quick
            test_cp_heuristics_reduce_nodes;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "basic optimum" `Quick test_ilp_solver_basic;
          Alcotest.test_case "infeasible" `Quick test_ilp_infeasible;
          Alcotest.test_case "equality" `Quick test_ilp_equality;
          Alcotest.test_case "model n=2" `Slow test_ilp_model_n2;
          Alcotest.test_case "model n=2 len 3" `Quick test_ilp_model_n2_len3_infeasible;
        ] );
      ("properties", [ qtest prop_ilp_knapsack_vs_brute ]);
    ]
