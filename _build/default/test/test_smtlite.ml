let check = Alcotest.check

let get_found (r : Smtlite.result) =
  match r.Smtlite.outcome with
  | Smtlite.Found p -> p
  | Smtlite.Unsat_length -> Alcotest.fail "unexpected UNSAT"
  | Smtlite.Budget_exhausted -> Alcotest.fail "unexpected budget exhaustion"

let test_perm_n2_finds_4 () =
  let p = get_found (Smtlite.synth_perm ~len:4 2) in
  check Alcotest.int "length" 4 (Array.length p);
  assert (Machine.Exec.sorts_all_permutations (Isa.Config.default 2) p)

let test_perm_n2_len3_unsat () =
  match (Smtlite.synth_perm ~len:3 2).Smtlite.outcome with
  | Smtlite.Unsat_length -> ()
  | _ -> Alcotest.fail "length 3 should be UNSAT"

let test_perm_n1_len0 () =
  (* Width 1 is already sorted: the empty program works. *)
  let p = get_found (Smtlite.synth_perm ~len:0 1) in
  check Alcotest.int "empty" 0 (Array.length p)

let test_cegis_n2 () =
  let r = Smtlite.synth_cegis ~len:4 2 in
  let p = get_found r in
  assert (Machine.Exec.sorts_all_permutations (Isa.Config.default 2) p);
  (* CEGIS should need at most n! = 2 encoded inputs. *)
  assert (r.Smtlite.encoded_inputs <= 2)

let test_cegis_ascending_goal () =
  let p =
    get_found (Smtlite.synth_cegis ~goal:Smtlite.Goal_ascending_present ~len:4 2)
  in
  assert (Machine.Exec.sorts_all_permutations (Isa.Config.default 2) p)

let test_no_heuristics_still_works () =
  let p =
    get_found (Smtlite.synth_perm ~heuristics:Smtlite.no_heuristics ~len:4 2)
  in
  assert (Machine.Exec.sorts_all_permutations (Isa.Config.default 2) p)

let test_budget_exhaustion_reported () =
  match (Smtlite.synth_cegis ~conflict_limit:5 ~len:11 3).Smtlite.outcome with
  | Smtlite.Budget_exhausted -> ()
  | Smtlite.Found _ -> Alcotest.fail "cannot find n=3 in 5 conflicts"
  | Smtlite.Unsat_length -> Alcotest.fail "cannot refute n=3 in 5 conflicts"

let test_find_min_length_n2 () =
  let results = Smtlite.find_min_length ~strategy:`Cegis ~max_len:6 2 in
  (* Lengths 1..3 UNSAT, length 4 found. *)
  check Alcotest.int "probed lengths" 4 (List.length results);
  (match List.rev results with
  | (4, { Smtlite.outcome = Smtlite.Found _; _ }) :: _ -> ()
  | _ -> Alcotest.fail "expected success at length 4");
  List.iter
    (fun (len, r) ->
      if len < 4 then
        match r.Smtlite.outcome with
        | Smtlite.Unsat_length -> ()
        | _ -> Alcotest.failf "length %d should be UNSAT" len)
    results

let test_first_is_cmp_heuristic () =
  let h = { Smtlite.default_heuristics with Smtlite.first_is_cmp = true } in
  let p = get_found (Smtlite.synth_perm ~heuristics:h ~len:4 2) in
  assert (p.(0).Isa.Instr.op = Isa.Instr.Cmp)

let () =
  Alcotest.run "smtlite"
    [
      ( "synthesis",
        [
          Alcotest.test_case "SMT-PERM n=2 finds length 4" `Quick test_perm_n2_finds_4;
          Alcotest.test_case "SMT-PERM n=2 length 3 UNSAT" `Quick test_perm_n2_len3_unsat;
          Alcotest.test_case "n=1 length 0" `Quick test_perm_n1_len0;
          Alcotest.test_case "SMT-CEGIS n=2" `Quick test_cegis_n2;
          Alcotest.test_case "ascending goal" `Quick test_cegis_ascending_goal;
          Alcotest.test_case "no heuristics" `Quick test_no_heuristics_still_works;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion_reported;
          Alcotest.test_case "find_min_length" `Slow test_find_min_length_n2;
          Alcotest.test_case "first-is-cmp skeleton" `Quick test_first_is_cmp_heuristic;
        ] );
    ]
