(* Cross-module integration tests: every synthesis technique against the
   same ground truth, synthesized kernels flowing through compilation,
   workloads and the cost model, and the paper's headline anchors. *)

let check = Alcotest.check

let verify n p = Machine.Exec.sorts_all_permutations (Isa.Config.default n) p

(* Anchor: the optimal kernel lengths the paper establishes. *)
let test_optimal_lengths_agree_across_techniques () =
  (* n=2: optimum 4, agreed by enum, SMT, CP, ILP and the planner. *)
  let enum =
    (Search.run_mode ~mode:Search.All_optimal (Isa.Config.default 2))
      .Search.optimal_length
  in
  check (Alcotest.option Alcotest.int) "enum" (Some 4) enum;
  (match (Smtlite.synth_perm ~len:3 2).Smtlite.outcome with
  | Smtlite.Unsat_length -> ()
  | _ -> Alcotest.fail "SMT disagrees on the lower bound");
  (match (Csp.Model.synth ~len:3 2).Csp.Model.outcome with
  | Csp.Model.Exhausted -> ()
  | _ -> Alcotest.fail "CP disagrees on the lower bound");
  (match (Ilp.Model.synth ~len:3 2).Ilp.Model.outcome with
  | Ilp.Model.Infeasible -> ()
  | _ -> Alcotest.fail "ILP disagrees on the lower bound");
  let plan =
    (Planning.Planner.solve ~heuristic:Planning.Planner.Blind
       ~strategy:Planning.Planner.Uniform 2)
      .Planning.Planner.plan
  in
  match plan with
  | Some p -> check Alcotest.int "planner optimal" 4 (Array.length p)
  | None -> Alcotest.fail "planner failed"

let test_n3_optimum_is_11 () =
  let r = Search.run ~opts:Search.best (Isa.Config.default 3) in
  check (Alcotest.option Alcotest.int) "length 11" (Some 11) r.Search.optimal_length

(* Anchor: a synthesized kernel beats the network kernel end to end. *)
let test_synthesized_shorter_than_network () =
  let synth = Option.get (Search.synthesize 3) in
  let network = Sortnet.to_kernel (Isa.Config.default 3) (Sortnet.optimal 3) in
  assert (Array.length synth < Array.length network);
  assert (verify 3 synth)

(* Synthesized kernel -> compiled sorter -> quicksort/mergesort pipeline. *)
let test_kernel_through_workloads () =
  let kernel = Option.get (Search.synthesize 3) in
  let sorter = Perf.Compile.kernel (Isa.Config.default 3) kernel in
  assert (Perf.Compile.verify sorter);
  let st = Random.State.make [| 77 |] in
  for _ = 1 to 20 do
    let input = Array.init (1 + Random.State.int st 300) (fun _ -> Random.State.int st 1000) in
    let q = Array.copy input and m = Array.copy input in
    Perf.Workload.quicksort ~base:sorter q;
    Perf.Workload.mergesort ~base:sorter m;
    assert (Machine.Exec.output_correct ~input ~output:q);
    assert (Machine.Exec.output_correct ~input ~output:m)
  done

(* The cost model ranks the known kernels sanely: the 11-instruction
   synthesized kernel at least matches the 12-instruction network. *)
let test_cost_model_ranks_kernels () =
  let cfg = Isa.Config.default 3 in
  let synth = Perf.Cost.predicted_cost cfg Perf.Kernels.paper_sort3 in
  let network = Perf.Cost.predicted_cost cfg (Perf.Kernels.network 3) in
  assert (synth <= network)

(* Stoke warm-started from a network keeps a correct kernel, and that
   kernel still runs through the whole perf pipeline. *)
let test_stoke_to_perf_pipeline () =
  let r =
    Stoke.warm
      ~opts:{ (Stoke.default 3) with Stoke.iterations = 60_000; seed = 2 }
      3 (Stoke.network_start 3)
  in
  assert r.Stoke.correct;
  let sorter = Perf.Compile.kernel (Isa.Config.default 3) r.Stoke.best in
  assert (Perf.Compile.verify sorter)

(* SMT-found and enum-found kernels are semantically interchangeable. *)
let test_smt_and_enum_kernels_equivalent () =
  match (Smtlite.synth_cegis ~len:4 2).Smtlite.outcome with
  | Smtlite.Found smt_kernel ->
      let enum_kernel = Option.get (Search.synthesize 2) in
      let cfg = Isa.Config.default 2 in
      List.iter
        (fun perm ->
          check (Alcotest.array Alcotest.int) "same output"
            (Machine.Exec.run cfg enum_kernel perm)
            (Machine.Exec.run cfg smt_kernel perm))
        (Perms.all 2)
  | _ -> Alcotest.fail "SMT failed on n=2"

(* The min/max and cmov searches agree on the paper's size relations:
   min/max kernels are strictly shorter. *)
let test_minmax_shorter_than_cmov () =
  let mm = Option.get (Minmax.synthesize 3).Minmax.optimal_length in
  let cmov =
    Array.length (Option.get (Search.synthesize 3))
  in
  check Alcotest.int "minmax 8" 8 mm;
  check Alcotest.int "cmov 11" 11 cmov

(* The umbrella library exposes a coherent surface. *)
let test_umbrella () =
  (match Sortsynth.synthesize 3 with
  | Some p ->
      assert (verify 3 p);
      let asm = Sortsynth.to_x86 3 p in
      assert (String.length asm > 0)
  | None -> Alcotest.fail "umbrella synthesize failed");
  match Sortsynth.synthesize_minmax 3 with
  | Some p -> check Alcotest.int "minmax len" 8 (Array.length p)
  | None -> Alcotest.fail "umbrella minmax failed"

(* Determinism: two runs of the same search produce identical results. *)
let test_search_deterministic () =
  let run () =
    let r = Search.run ~opts:Search.best (Isa.Config.default 3) in
    (r.Search.programs, r.Search.optimal_length, r.Search.stats.Search.expanded)
  in
  let p1, l1, e1 = run () in
  let p2, l2, e2 = run () in
  assert (p1 = p2);
  assert (l1 = l2);
  check Alcotest.int "same expansions" e1 e2

let () =
  Alcotest.run "integration"
    [
      ( "cross-technique",
        [
          Alcotest.test_case "optimal lengths agree (n=2)" `Slow
            test_optimal_lengths_agree_across_techniques;
          Alcotest.test_case "n=3 optimum is 11" `Quick test_n3_optimum_is_11;
          Alcotest.test_case "SMT kernel = enum kernel" `Quick
            test_smt_and_enum_kernels_equivalent;
          Alcotest.test_case "minmax < cmov lengths" `Quick
            test_minmax_shorter_than_cmov;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "synth < network" `Quick
            test_synthesized_shorter_than_network;
          Alcotest.test_case "kernel through workloads" `Quick
            test_kernel_through_workloads;
          Alcotest.test_case "cost model ranking" `Quick test_cost_model_ranks_kernels;
          Alcotest.test_case "stoke -> perf" `Slow test_stoke_to_perf_pipeline;
          Alcotest.test_case "umbrella API" `Quick test_umbrella;
          Alcotest.test_case "determinism" `Quick test_search_deterministic;
        ] );
    ]
