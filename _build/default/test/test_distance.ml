let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let cfg = Isa.Config.default 3
let d3 = Distance.compute cfg

let test_sorted_is_zero () =
  List.iter
    (fun scratch ->
      let c = Machine.Assign.of_values cfg [| 1; 2; 3; scratch |] in
      check Alcotest.int "dist 0" 0 (Distance.dist d3 c))
    [ 0; 1; 2; 3 ]

let test_known_distances () =
  (* One transposition away, fixable by a 3-instruction swap via scratch. *)
  let c = Machine.Assign.of_permutation cfg [| 2; 1; 3 |] in
  check Alcotest.int "swap needs 3" 3 (Distance.dist d3 c);
  (* A 3-cycle needs 4 moves through the scratch register. *)
  let c = Machine.Assign.of_permutation cfg [| 3; 1; 2 |] in
  check Alcotest.int "3-cycle" 4 (Distance.dist d3 c)

let test_dead_assignment_infinite () =
  let c = Machine.Assign.of_values cfg [| 2; 2; 3; 3 |] in
  (* 1 erased — reachable (e.g. via mov) and unsortable. *)
  check Alcotest.int "infinite" Distance.infinity (Distance.dist d3 c)

let test_initial_lower_bound () =
  let lb = Distance.state_lower_bound d3 (Sstate.initial cfg) in
  check Alcotest.int "initial lb" 4 lb;
  (* Admissibility anchor: the optimal kernel for n=3 has 11 instructions,
     so any lower bound must be <= 11. *)
  assert (lb <= 11)

let test_max_finite () =
  assert (Distance.max_finite_dist d3 >= 4);
  assert (Distance.max_finite_dist d3 <= 11)

let test_optimal_actions_nonempty () =
  let instrs = Isa.Instr.all cfg in
  let marks = Distance.optimal_actions d3 instrs (Sstate.initial cfg) in
  assert (Array.exists Fun.id marks);
  (* All comparisons must be admitted (see interface note). *)
  Array.iteri
    (fun k i -> if i.Isa.Instr.op = Isa.Instr.Cmp then assert marks.(k))
    instrs

(* Admissibility: for random reachable assignments, greedily following
   dist-decreasing instructions reaches sorted in exactly [dist] steps. *)
let prop_dist_realizable =
  let instrs = Isa.Instr.all cfg in
  QCheck.Test.make ~name:"distance realizable by greedy descent" ~count:200
    QCheck.(pair (int_bound 100000) (int_range 0 6))
    (fun (seed, len) ->
      let st = Random.State.make [| seed |] in
      let perm = Perms.random st 3 in
      let c0 = Machine.Assign.of_permutation cfg perm in
      let c =
        ref
          (Array.fold_left
             (fun c _ ->
               Machine.Assign.apply cfg
                 instrs.(Random.State.int st (Array.length instrs))
                 c)
             c0
             (Array.make len ()))
      in
      let d = Distance.dist d3 !c in
      if d >= Distance.infinity then true
      else begin
        let steps = ref 0 in
        while not (Machine.Assign.is_sorted cfg !c) do
          let found = ref false in
          Array.iter
            (fun i ->
              if not !found then
                let c' = Machine.Assign.apply cfg i !c in
                if Distance.dist d3 c' = Distance.dist d3 !c - 1 then begin
                  c := c';
                  found := true
                end)
            instrs;
          if not !found then failwith "stuck";
          incr steps
        done;
        !steps = d
      end)

(* Consistency: one instruction changes the distance by at most 1 upward
   never more than... formally dist(c) <= dist(apply i c) + 1. *)
let prop_dist_triangle =
  let instrs = Isa.Instr.all cfg in
  QCheck.Test.make ~name:"dist(c) <= dist(succ) + 1" ~count:300
    QCheck.(pair (int_bound 100000) (int_bound (Array.length instrs - 1)))
    (fun (seed, k) ->
      let st = Random.State.make [| seed |] in
      let c0 = Machine.Assign.of_permutation cfg (Perms.random st 3) in
      let c =
        Array.fold_left
          (fun c _ ->
            Machine.Assign.apply cfg
              instrs.(Random.State.int st (Array.length instrs))
              c)
          c0
          (Array.make (Random.State.int st 6) ())
      in
      let c' = Machine.Assign.apply cfg instrs.(k) c in
      let d = Distance.dist d3 c and d' = Distance.dist d3 c' in
      d' >= Distance.infinity || d <= d' + 1)

let test_cached_shares () =
  let a = Distance.compute_cached (Isa.Config.default 2) in
  let b = Distance.compute_cached (Isa.Config.default 2) in
  assert (a == b)

let test_reachable_counts () =
  assert (Distance.reachable_count d3 > 6);
  let d2 = Distance.compute (Isa.Config.default 2) in
  assert (Distance.reachable_count d2 > 2);
  check Alcotest.int "n=2 radius" 3 (Distance.max_finite_dist d2)

let () =
  Alcotest.run "distance"
    [
      ( "unit",
        [
          Alcotest.test_case "sorted = 0" `Quick test_sorted_is_zero;
          Alcotest.test_case "known distances" `Quick test_known_distances;
          Alcotest.test_case "dead = infinity" `Quick test_dead_assignment_infinite;
          Alcotest.test_case "initial lower bound" `Quick test_initial_lower_bound;
          Alcotest.test_case "max finite" `Quick test_max_finite;
          Alcotest.test_case "optimal actions" `Quick test_optimal_actions_nonempty;
          Alcotest.test_case "cache" `Quick test_cached_shares;
          Alcotest.test_case "reachable counts" `Quick test_reachable_counts;
        ] );
      ("properties", [ qtest prop_dist_realizable; qtest prop_dist_triangle ]);
    ]
