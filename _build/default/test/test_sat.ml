let qtest = QCheck_alcotest.to_alcotest

let solve_clauses nvars clauses =
  let s = Sat.create () in
  Sat.ensure_vars s nvars;
  List.iter (Sat.add_clause s) clauses;
  match Sat.solve s with Some r -> r | None -> Alcotest.fail "budget"

let is_sat = function Sat.Sat _ -> true | Sat.Unsat -> false

let model_satisfies model clauses =
  List.for_all
    (fun clause ->
      List.exists
        (fun l -> if l > 0 then model.(l) else not model.(-l))
        clause)
    clauses

let test_trivial_sat () =
  match solve_clauses 2 [ [ 1 ]; [ -2 ] ] with
  | Sat.Sat m ->
      assert m.(1);
      assert (not m.(2))
  | Sat.Unsat -> Alcotest.fail "should be SAT"

let test_trivial_unsat () =
  assert (not (is_sat (solve_clauses 1 [ [ 1 ]; [ -1 ] ])))

let test_empty_clause () =
  assert (not (is_sat (solve_clauses 1 [ [] ])))

let test_no_clauses () = assert (is_sat (solve_clauses 3 []))

let test_propagation_chain () =
  (* x1 -> x2 -> ... -> x6, x1 forced. *)
  let clauses =
    [ 1 ] :: List.init 5 (fun i -> [ -(i + 1); i + 2 ])
  in
  match solve_clauses 6 clauses with
  | Sat.Sat m -> for v = 1 to 6 do assert m.(v) done
  | Sat.Unsat -> Alcotest.fail "SAT expected"

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: UNSAT. Var p(i,h) = 2i + h - 2 for i in 1..3. *)
  let v i h = ((i - 1) * 2) + h in
  let clauses =
    [ [ v 1 1; v 1 2 ]; [ v 2 1; v 2 2 ]; [ v 3 1; v 3 2 ] ]
    @ List.concat_map
        (fun h ->
          [ [ -(v 1 h); -(v 2 h) ]; [ -(v 1 h); -(v 3 h) ]; [ -(v 2 h); -(v 3 h) ] ])
        [ 1; 2 ]
  in
  assert (not (is_sat (solve_clauses 6 clauses)))

let test_pigeonhole_4_3 () =
  let v i h = ((i - 1) * 3) + h in
  let at_least = List.init 4 (fun i -> [ v (i + 1) 1; v (i + 1) 2; v (i + 1) 3 ]) in
  let conflicts =
    List.concat_map
      (fun h ->
        let pairs = ref [] in
        for i = 1 to 4 do
          for j = i + 1 to 4 do
            pairs := [ -(v i h); -(v j h) ] :: !pairs
          done
        done;
        !pairs)
      [ 1; 2; 3 ]
  in
  assert (not (is_sat (solve_clauses 12 (at_least @ conflicts))))

let test_xor_chain_sat () =
  (* x1 xor x2 = 1, x2 xor x3 = 1, x1 = 1  =>  x3 = 1. *)
  let xor a b =
    [ [ a; b ]; [ -a; -b ] ]
  in
  match solve_clauses 3 ([ [ 1 ] ] @ xor 1 2 @ xor 2 3) with
  | Sat.Sat m ->
      assert m.(1);
      assert (not m.(2));
      assert m.(3)
  | Sat.Unsat -> Alcotest.fail "SAT expected"

let test_assumptions () =
  let s = Sat.create () in
  Sat.ensure_vars s 2;
  Sat.add_clause s [ -1; 2 ];
  (match Sat.solve ~assumptions:[ 1; -2 ] s with
  | Some Sat.Unsat -> ()
  | _ -> Alcotest.fail "assumptions should conflict");
  (* Solver remains usable with different assumptions. *)
  match Sat.solve ~assumptions:[ 1 ] s with
  | Some (Sat.Sat m) ->
      assert m.(1);
      assert m.(2)
  | _ -> Alcotest.fail "SAT expected"

let test_incremental () =
  let s = Sat.create () in
  Sat.ensure_vars s 3;
  Sat.add_clause s [ 1; 2 ];
  (match Sat.solve s with Some (Sat.Sat _) -> () | _ -> Alcotest.fail "SAT");
  Sat.add_clause s [ -1 ];
  (match Sat.solve s with
  | Some (Sat.Sat m) -> assert m.(2)
  | _ -> Alcotest.fail "SAT after adding");
  Sat.add_clause s [ -2 ];
  match Sat.solve s with
  | Some Sat.Unsat -> ()
  | _ -> Alcotest.fail "UNSAT after closing"

(* Reference DPLL for cross-checking on small random instances. *)
let rec dpll clauses assignment nvars =
  if List.exists (( = ) []) clauses then false
  else if List.length assignment = nvars then true
  else begin
    let v = List.length assignment + 1 in
    let try_value b =
      let l = if b then v else -v in
      let clauses' =
        List.filter_map
          (fun c ->
            if List.mem l c then None else Some (List.filter (( <> ) (-l)) c))
          clauses
      in
      dpll clauses' ((v, b) :: assignment) nvars
    in
    try_value true || try_value false
  end

let random_3sat st nvars nclauses =
  List.init nclauses (fun _ ->
      List.init 3 (fun _ ->
          let v = 1 + Random.State.int st nvars in
          if Random.State.bool st then v else -v))

let prop_matches_dpll =
  QCheck.Test.make ~name:"CDCL agrees with reference DPLL" ~count:150
    QCheck.(pair (int_bound 100000) (int_range 4 30))
    (fun (seed, nclauses) ->
      let st = Random.State.make [| seed |] in
      let nvars = 8 in
      let clauses = random_3sat st nvars nclauses in
      let expected = dpll clauses [] nvars in
      match solve_clauses nvars clauses with
      | Sat.Sat m -> expected && model_satisfies m clauses
      | Sat.Unsat -> not expected)

let prop_models_valid =
  QCheck.Test.make ~name:"returned models satisfy all clauses" ~count:150
    QCheck.(pair (int_bound 100000) (int_range 10 80))
    (fun (seed, nclauses) ->
      let st = Random.State.make [| seed |] in
      let nvars = 20 in
      let clauses = random_3sat st nvars nclauses in
      match solve_clauses nvars clauses with
      | Sat.Sat m -> model_satisfies m clauses
      | Sat.Unsat -> true)

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "no clauses" `Quick test_no_clauses;
          Alcotest.test_case "propagation chain" `Quick test_propagation_chain;
          Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
          Alcotest.test_case "pigeonhole 4/3" `Quick test_pigeonhole_4_3;
          Alcotest.test_case "xor chain" `Quick test_xor_chain_sat;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental" `Quick test_incremental;
        ] );
      ("properties", [ qtest prop_matches_dpll; qtest prop_models_valid ]);
    ]
