let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let cfg = Isa.Config.default 3

let test_initial () =
  let s = Sstate.initial cfg in
  check Alcotest.int "6 distinct assignments" 6 (Sstate.size s);
  check Alcotest.int "6 distinct perms" 6 (Sstate.distinct_perms cfg s);
  assert (Sstate.all_viable cfg s);
  assert (not (Sstate.is_final cfg s))

let test_canonical_sorted_dedup () =
  let c1 = Machine.Assign.of_values cfg [| 1; 2; 3; 0 |] in
  let c2 = Machine.Assign.of_values cfg [| 3; 2; 1; 0 |] in
  let s = Sstate.of_codes [| c2; c1; c2; c1; c2 |] in
  check Alcotest.int "deduplicated" 2 (Sstate.size s);
  let arr = Sstate.codes s in
  assert (arr.(0) < arr.(1))

let test_of_codes_does_not_mutate () =
  let input = [| 5; 3; 3; 1 |] in
  let copy = Array.copy input in
  ignore (Sstate.of_codes input);
  check (Alcotest.array Alcotest.int) "input untouched" copy input

let test_apply_converges () =
  (* cmp r1 r2; cmovl ... on n=2: the two permutations converge. *)
  let cfg2 = Isa.Config.default 2 in
  let s = Sstate.initial cfg2 in
  check Alcotest.int "initially 2 perms" 2 (Sstate.distinct_perms cfg2 s);
  let s = Sstate.apply cfg2 (Isa.Instr.mov 2 1) s in
  let s = Sstate.apply cfg2 (Isa.Instr.cmp 0 1) s in
  let s = Sstate.apply cfg2 (Isa.Instr.cmovg 1 0) s in
  let s = Sstate.apply cfg2 (Isa.Instr.cmovg 0 2) s in
  assert (Sstate.is_final cfg2 s);
  check Alcotest.int "converged to 1 perm" 1 (Sstate.distinct_perms cfg2 s)

let test_distinct_perms_vs_assignments () =
  (* Two codes equal on value registers but different scratch. *)
  let c1 = Machine.Assign.of_values cfg [| 1; 2; 3; 0 |] in
  let c2 = Machine.Assign.of_values cfg [| 1; 2; 3; 2 |] in
  let s = Sstate.of_codes [| c1; c2 |] in
  check Alcotest.int "2 assignments" 2 (Sstate.distinct_assignments s);
  check Alcotest.int "1 perm" 1 (Sstate.distinct_perms cfg s)

let test_viability_state () =
  let dead = Machine.Assign.of_values cfg [| 1; 1; 3; 3 |] in
  let ok = Machine.Assign.of_values cfg [| 1; 2; 3; 0 |] in
  assert (not (Sstate.all_viable cfg (Sstate.of_codes [| ok; dead |])))

let test_hash_equal_consistency () =
  let s1 = Sstate.initial cfg in
  let s2 = Sstate.of_codes (Array.copy (Sstate.codes s1 :> int array)) in
  assert (Sstate.equal s1 s2);
  check Alcotest.int "hash agrees" (Sstate.hash s1) (Sstate.hash s2)

let test_tbl () =
  let tbl = Sstate.Tbl.create 4 in
  Sstate.Tbl.replace tbl (Sstate.initial cfg) 42;
  check (Alcotest.option Alcotest.int) "lookup" (Some 42)
    (Sstate.Tbl.find_opt tbl (Sstate.initial cfg))

(* Canonicalization is execution-order congruent: applying an instruction
   commutes with canonicalization. *)
let prop_apply_congruent =
  let instrs = Isa.Instr.all cfg in
  QCheck.Test.make ~name:"apply commutes with canonicalization" ~count:300
    QCheck.(pair (int_bound 100000) (int_bound (Array.length instrs - 1)))
    (fun (seed, k) ->
      let st = Random.State.make [| seed |] in
      (* Random multiset of assignments. *)
      let codes =
        Array.init
          (1 + Random.State.int st 10)
          (fun _ ->
            Machine.Assign.of_values cfg
              (Array.init 4 (fun _ -> Random.State.int st 4)))
      in
      let i = instrs.(k) in
      let via_state = Sstate.apply cfg i (Sstate.of_codes codes) in
      let via_codes =
        Sstate.of_codes (Array.map (Machine.Assign.apply cfg i) codes)
      in
      Sstate.equal via_state via_codes)

let prop_canonical_idempotent =
  QCheck.Test.make ~name:"canonicalization idempotent" ~count:300
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let codes =
        Array.init
          (1 + Random.State.int st 12)
          (fun _ ->
            Machine.Assign.of_values cfg
              (Array.init 4 (fun _ -> Random.State.int st 4)))
      in
      let s = Sstate.of_codes codes in
      Sstate.equal s (Sstate.of_codes (Sstate.codes s :> int array)))

let () =
  Alcotest.run "sstate"
    [
      ( "unit",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "canonical form" `Quick test_canonical_sorted_dedup;
          Alcotest.test_case "of_codes pure" `Quick test_of_codes_does_not_mutate;
          Alcotest.test_case "apply converges" `Quick test_apply_converges;
          Alcotest.test_case "perms vs assignments" `Quick
            test_distinct_perms_vs_assignments;
          Alcotest.test_case "viability" `Quick test_viability_state;
          Alcotest.test_case "hash/equal" `Quick test_hash_equal_consistency;
          Alcotest.test_case "Tbl" `Quick test_tbl;
        ] );
      ( "properties",
        [ qtest prop_apply_congruent; qtest prop_canonical_idempotent ] );
    ]
