let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_factorial () =
  check Alcotest.int "0!" 1 (Perms.factorial 0);
  check Alcotest.int "1!" 1 (Perms.factorial 1);
  check Alcotest.int "5!" 120 (Perms.factorial 5);
  check Alcotest.int "10!" 3628800 (Perms.factorial 10);
  Alcotest.check_raises "negative" (Invalid_argument "Perms.factorial: negative")
    (fun () -> ignore (Perms.factorial (-1)))

let test_all_counts () =
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "|all %d|" n)
        (Perms.factorial n)
        (List.length (Perms.all n)))
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_all_distinct_and_valid () =
  let ps = Perms.all 4 in
  List.iter (fun p -> assert (Perms.is_permutation p)) ps;
  let sorted = List.sort_uniq compare ps in
  check Alcotest.int "all distinct" (List.length ps) (List.length sorted)

let test_all_lex_order () =
  let ps = Perms.all 3 in
  check
    (Alcotest.list (Alcotest.array Alcotest.int))
    "lexicographic"
    [
      [| 1; 2; 3 |]; [| 1; 3; 2 |]; [| 2; 1; 3 |]; [| 2; 3; 1 |]; [| 3; 1; 2 |];
      [| 3; 2; 1 |];
    ]
    ps

let test_is_sorted () =
  assert (Perms.is_sorted [||]);
  assert (Perms.is_sorted [| 1 |]);
  assert (Perms.is_sorted [| 1; 1; 2 |]);
  assert (not (Perms.is_sorted [| 2; 1 |]))

let test_is_identity () =
  assert (Perms.is_identity [| 1; 2; 3 |]);
  assert (not (Perms.is_identity [| 1; 3; 2 |]));
  assert (Perms.is_identity [||])

let test_is_permutation () =
  assert (Perms.is_permutation [| 3; 1; 2 |]);
  assert (not (Perms.is_permutation [| 1; 1; 3 |]));
  assert (not (Perms.is_permutation [| 0; 1; 2 |]));
  assert (not (Perms.is_permutation [| 1; 2; 4 |]))

let test_rank_unrank_roundtrip () =
  List.iteri
    (fun i p ->
      check Alcotest.int "rank of all.(i)" i (Perms.rank p);
      check (Alcotest.array Alcotest.int) "unrank . rank" p
        (Perms.unrank 4 (Perms.rank p)))
    (Perms.all 4)

let test_inversions () =
  check Alcotest.int "sorted" 0 (Perms.inversions [| 1; 2; 3 |]);
  check Alcotest.int "reversed" 3 (Perms.inversions [| 3; 2; 1 |]);
  check Alcotest.int "one swap" 1 (Perms.inversions [| 2; 1; 3 |])

let test_apply () =
  check (Alcotest.array Alcotest.string) "permute"
    [| "c"; "a"; "b" |]
    (Perms.apply [| 3; 1; 2 |] [| "a"; "b"; "c" |])

let test_same_multiset () =
  assert (Perms.same_multiset [| 1; 2; 2 |] [| 2; 1; 2 |]);
  assert (not (Perms.same_multiset [| 1; 2; 2 |] [| 1; 1; 2 |]));
  assert (not (Perms.same_multiset [| 1 |] [| 1; 1 |]))

let prop_random_is_permutation =
  QCheck.Test.make ~name:"random produces permutations" ~count:200
    QCheck.(pair (int_bound 1000) (int_range 1 8))
    (fun (seed, n) ->
      Perms.is_permutation (Perms.random (Random.State.make [| seed |]) n))

let prop_unrank_is_permutation =
  QCheck.Test.make ~name:"unrank produces permutations" ~count:200
    QCheck.(int_bound (Perms.factorial 6 - 1))
    (fun r -> Perms.is_permutation (Perms.unrank 6 r))

let prop_rank_unrank =
  QCheck.Test.make ~name:"rank . unrank = id" ~count:200
    QCheck.(int_bound (Perms.factorial 6 - 1))
    (fun r -> Perms.rank (Perms.unrank 6 r) = r)

let prop_inversions_zero_iff_sorted =
  QCheck.Test.make ~name:"inversions = 0 iff sorted" ~count:200
    QCheck.(pair (int_bound 1000) (int_range 1 7))
    (fun (seed, n) ->
      let p = Perms.random (Random.State.make [| seed |]) n in
      Perms.inversions p = 0 = Perms.is_sorted p)

let () =
  Alcotest.run "perms"
    [
      ( "unit",
        [
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "all: counts" `Quick test_all_counts;
          Alcotest.test_case "all: distinct and valid" `Quick
            test_all_distinct_and_valid;
          Alcotest.test_case "all: lex order" `Quick test_all_lex_order;
          Alcotest.test_case "is_sorted" `Quick test_is_sorted;
          Alcotest.test_case "is_identity" `Quick test_is_identity;
          Alcotest.test_case "is_permutation" `Quick test_is_permutation;
          Alcotest.test_case "rank/unrank roundtrip" `Quick
            test_rank_unrank_roundtrip;
          Alcotest.test_case "inversions" `Quick test_inversions;
          Alcotest.test_case "apply" `Quick test_apply;
          Alcotest.test_case "same_multiset" `Quick test_same_multiset;
        ] );
      ( "properties",
        [
          qtest prop_random_is_permutation;
          qtest prop_unrank_is_permutation;
          qtest prop_rank_unrank;
          qtest prop_inversions_zero_iff_sorted;
        ] );
    ]
