let qtest = QCheck_alcotest.to_alcotest

(* --- Stoke --- *)

let small n iters = { (Stoke.default n) with Stoke.iterations = iters; seed = 3 }

let test_stoke_cold_n2 () =
  (* n=2 is small enough for MCMC to find a correct kernel reliably. *)
  let r = Stoke.cold ~opts:(small 2 300_000) 2 in
  assert r.Stoke.correct;
  assert (Array.length r.Stoke.best >= 4)

let test_stoke_warm_preserves_correctness () =
  let start = Stoke.network_start 3 in
  let r = Stoke.warm ~opts:(small 3 150_000) 3 start in
  (* Warm start begins correct; the best program must remain correct. *)
  assert r.Stoke.correct;
  assert (Array.length r.Stoke.best <= Array.length start)

let test_stoke_cost_zero_iterations () =
  let r = Stoke.cold ~opts:(small 2 0) 2 in
  (* All-Nop start: incorrect, nothing accepted. *)
  assert (not r.Stoke.correct);
  Alcotest.(check int) "no accepts" 0 r.Stoke.accepted

let test_stoke_random_suite_oracle_gap () =
  (* With a tiny random test suite the search can accept kernels that pass
     the suite but fail full verification — the paper's observation about
     partial test suites. Either way the [correct] field is the ground
     truth. *)
  let opts =
    { (small 3 100_000) with Stoke.suite = Stoke.Random_subset { count = 2; seed = 1 } }
  in
  let r = Stoke.cold ~opts 3 in
  if r.Stoke.correct then
    assert (Machine.Exec.sorts_all_permutations (Isa.Config.default 3) r.Stoke.best)

let test_network_start_correct () =
  for n = 2 to 5 do
    assert (Machine.Exec.sorts_all_permutations (Isa.Config.default n)
              (Stoke.network_start n))
  done

(* --- Baselines and the kernel compiler --- *)

let test_baselines_verify () =
  for n = 2 to 6 do
    List.iter
      (fun s ->
        if not (Perf.Compile.verify s) then
          Alcotest.failf "baseline %s fails at width %d" s.Perf.Compile.name n)
      (Perf.Baselines.all n)
  done

let test_compiled_kernels_verify () =
  assert (Perf.Compile.verify (Perf.Compile.kernel (Isa.Config.default 3) Perf.Kernels.paper_sort3));
  for n = 2 to 5 do
    let k = Perf.Compile.kernel (Isa.Config.default n) (Perf.Kernels.network n) in
    assert (Perf.Compile.verify k)
  done

let test_named_kernels () =
  assert (Perf.Compile.verify (Perf.Kernels.alphadev 3));
  assert (Perf.Compile.verify (Perf.Kernels.alphadev 4));
  assert (Perf.Compile.verify Perf.Kernels.cassioneri);
  for n = 3 to 5 do
    assert (Perf.Compile.verify (Perf.Kernels.mimicry n))
  done

let prop_compiled_kernel_matches_interpreter =
  let cfg = Isa.Config.default 3 in
  let sorter = Perf.Compile.kernel cfg Perf.Kernels.paper_sort3 in
  QCheck.Test.make ~name:"compiled closure = interpreter on random input"
    ~count:300
    QCheck.(triple small_signed_int small_signed_int small_signed_int)
    (fun (a, b, c) ->
      let arr = [| a; b; c |] in
      let by_interp = Machine.Exec.run cfg Perf.Kernels.paper_sort3 arr in
      let buf = Array.copy arr in
      sorter.Perf.Compile.run buf 0;
      buf = by_interp)

let prop_baselines_sort =
  QCheck.Test.make ~name:"all baselines sort random arrays" ~count:200
    QCheck.(pair (int_bound 100000) (int_range 2 6))
    (fun (seed, n) ->
      let st = Random.State.make [| seed |] in
      let input = Array.init n (fun _ -> Random.State.int st 100 - 50) in
      List.for_all
        (fun s ->
          let buf = Array.copy input in
          s.Perf.Compile.run buf 0;
          Machine.Exec.output_correct ~input ~output:buf)
        (Perf.Baselines.all n))

let () =
  Alcotest.run "baselines-stoke"
    [
      ( "stoke",
        [
          Alcotest.test_case "cold n=2 succeeds" `Slow test_stoke_cold_n2;
          Alcotest.test_case "warm stays correct" `Slow
            test_stoke_warm_preserves_correctness;
          Alcotest.test_case "zero iterations" `Quick test_stoke_cost_zero_iterations;
          Alcotest.test_case "random-suite oracle gap" `Slow
            test_stoke_random_suite_oracle_gap;
          Alcotest.test_case "network starts correct" `Quick test_network_start_correct;
        ] );
      ( "perf",
        [
          Alcotest.test_case "baselines verify" `Quick test_baselines_verify;
          Alcotest.test_case "compiled kernels verify" `Quick
            test_compiled_kernels_verify;
          Alcotest.test_case "named kernels" `Quick test_named_kernels;
        ] );
      ( "properties",
        [ qtest prop_compiled_kernel_matches_interpreter; qtest prop_baselines_sort ]
      );
    ]
