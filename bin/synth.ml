(* Command-line synthesizer: the repository's front door.

   Examples:
     synth -n 3                       fastest configuration, print the kernel
     synth -n 3 --x86                 render as x86-64 assembly
     synth -n 4 --engine level        certified-minimal search
     synth -n 4 --engine parallel -j 4   level search over 4 worker domains
     synth -n 3 --all --cut 2         enumerate all optimal kernels
     synth -n 3 --minmax              min/max (vector) kernel
     synth -n 3 --prove-none 10       show no shorter kernel exists
     synth -n 3 --pddl                emit the PDDL planning encoding
     synth -n 3 --cache               serve/populate the kernel registry
     synth -n 3 --stats-json -        dump the search-stats JSON snapshot
     synth batch jobs.json -j 4      run a job list through the registry
     synth registry list|verify|gc    inspect / re-certify / sweep the store *)

open Cmdliner

let write_json path json =
  let json = json ^ "\n" in
  if path = "-" then print_string json
  else
    match open_out path with
    | oc ->
        output_string oc json;
        close_out oc
    | exception Sys_error msg ->
        Printf.eprintf "synth: cannot write stats JSON: %s\n" msg;
        exit 1

let resolve_root = function
  | Some dir -> dir
  | None -> Registry.Store.default_root ()

(* Verification must survive release builds (asserts do not): print a
   diagnostic and exit nonzero instead. *)
let certify_or_die cfg p =
  match Registry.Verify.certify cfg p with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "synth: VERIFICATION FAILED: %s\n" msg;
      exit 1

let zero_stats =
  {
    Search.expanded = 0;
    generated = 0;
    deduped = 0;
    pruned_cut = 0;
    pruned_viability = 0;
    pruned_bound = 0;
    max_open = 0;
    elapsed = 0.;
    timeline = [];
    levels = [];
  }

(* ------------------------------------------------------------------ *)
(* Default command: synthesize one kernel.                             *)

let run n minmax engine jobs all cut heuristic max_len x86 prove_none pddl
    scratch cache cache_dir stats_json =
  let cfg = Isa.Config.make ~n ~m:scratch in
  if pddl then begin
    print_string (Planning.Pddl.domain cfg);
    print_newline ();
    print_string (Planning.Pddl.problem cfg);
    `Ok ()
  end
  else if minmax then begin
    let opts = { Minmax.default with Minmax.all_solutions = all; max_len } in
    let r = Minmax.synthesize ~opts n in
    match r.Minmax.programs with
    | [] ->
        Printf.printf "no min/max kernel found\n";
        `Ok ()
    | p :: _ ->
        Printf.printf "# %d instructions, %d solutions, %.3f s, %d states\n"
          (Array.length p) r.Minmax.solution_count r.Minmax.elapsed
          r.Minmax.expanded;
        print_endline
          (if x86 then Minmax.Vexec.to_x86 cfg p else Minmax.Vexec.to_string cfg p);
        `Ok ()
  end
  else begin
    let key =
      Registry.Key.make ~m:scratch ~engine ~heuristic
        ~cut:(Registry.Key.cut_of_factor cut) ?max_len n
    in
    let mode =
      match prove_none with
      | Some l -> Search.Prove_none l
      | None -> if all then Search.All_optimal else Search.Find_first
    in
    let label =
      Printf.sprintf "synth n=%d engine=%s" n (Registry.Key.engine_to_string engine)
    in
    let root = resolve_root cache_dir in
    let counters = Registry.Store.fresh_counters () in
    (* Only plain find-first requests are cacheable: the store holds one
       kernel per key, not solution enumerations or non-existence proofs. *)
    let cacheable = cache && mode = Search.Find_first in
    let extra () =
      if cache then Some [ ("registry", Registry.Store.counters_json counters) ]
      else None
    in
    let dump_stats stats =
      match stats_json with
      | None -> ()
      | Some path -> write_json path (Search.Stats.to_json ~label ?extra:(extra ()) stats)
    in
    let hit =
      if cacheable then
        match Registry.Store.lookup ~counters ~root key with
        | Registry.Store.Hit e -> Some e
        | Registry.Store.Quarantined reason ->
            Printf.eprintf "synth: registry: quarantined bad entry: %s\n" reason;
            None
        | Registry.Store.Miss -> None
      else None
    in
    match hit with
    | Some e ->
        Printf.printf "# registry hit %s: %d instructions, verified on load\n"
          (Registry.Key.hash key) e.Registry.Store.length;
        print_endline
          (if x86 then Isa.Program.to_x86 cfg e.Registry.Store.program
           else Isa.Program.to_string cfg e.Registry.Store.program);
        dump_stats zero_stats;
        `Ok ()
    | None ->
        let r = Registry.Scheduler.run_key ~domains:jobs ~mode key in
        (match mode with
        | Search.Prove_none l ->
            Printf.printf
              (match r.Search.optimal_length with
              | None -> format_of_string "no kernel of length <= %d exists (%d states explored)\n"
              | Some _ -> format_of_string "a kernel of length <= %d exists! (%d states)\n")
              l r.Search.stats.Search.expanded
        | _ -> (
            match r.Search.programs with
            | [] -> Printf.printf "no kernel found\n"
            | p :: _ ->
                certify_or_die cfg p;
                Printf.printf "# %d instructions, %d solutions, %.3f s, %d states\n"
                  (Array.length p) r.Search.solution_count
                  r.Search.stats.Search.elapsed r.Search.stats.Search.expanded;
                print_endline
                  (if x86 then Isa.Program.to_x86 cfg p else Isa.Program.to_string cfg p);
                if cacheable then
                  match Registry.Store.insert ~counters ~root key r with
                  | Ok _ ->
                      Printf.printf "# registry store %s\n" (Registry.Key.hash key)
                  | Error msg ->
                      Printf.eprintf "synth: registry: cannot store kernel: %s\n" msg));
        dump_stats r.Search.stats;
        `Ok ()
  end

let n =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Array length to sort (1-6).")

let minmax = Arg.(value & flag & info [ "minmax" ] ~doc:"Use the min/max vector ISA.")

let engine =
  Arg.(
    value
    & opt (enum Registry.Key.engine_assoc) Registry.Key.Astar
    & info [ "engine" ]
        ~doc:
          "Search engine: astar (fast), level (certified minimal), or \
           parallel (level search over --jobs worker domains).")

let jobs =
  Arg.(
    value & opt int 2
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for --engine parallel and for batch mode.")

let all = Arg.(value & flag & info [ "all" ] ~doc:"Enumerate all optimal kernels.")

let cut =
  Arg.(
    value & opt float 1.0
    & info [ "cut"; "k" ] ~docv:"K"
        ~doc:"Perm-count cut factor (Section 3.5); 0 disables the cut.")

let heuristic =
  Arg.(
    value
    & opt (enum Registry.Key.heuristic_assoc) Search.Perm_count
    & info [ "heuristic" ] ~doc:"A* heuristic: none, perm, assign, or dist.")

let max_len =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-len" ] ~docv:"L" ~doc:"Length bound for the search.")

let x86 = Arg.(value & flag & info [ "x86" ] ~doc:"Print x86-64 assembly.")

let prove_none =
  Arg.(
    value
    & opt (some int) None
    & info [ "prove-none" ] ~docv:"L"
        ~doc:"Exhaustively show that no kernel of length <= L exists.")

let pddl =
  Arg.(value & flag & info [ "pddl" ] ~doc:"Emit the PDDL domain and problem.")

let scratch =
  Arg.(value & opt int 1 & info [ "scratch"; "m" ] ~doc:"Scratch registers (default 1).")

let cache =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Consult the kernel registry before searching and store the \
           synthesized kernel after. Entries are re-verified on every load.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "SORTSYNTH_REGISTRY")
        ~doc:
          "Registry root directory (default: \\$SORTSYNTH_REGISTRY or \
           .sortsynth-registry).")

let stats_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Dump a machine-readable JSON snapshot of the search statistics \
           (counters, timeline, per-level open/pruned breakdown) to $(docv), \
           or to stdout when $(docv) is '-'.")

let default_term =
  Term.(
    ret
      (const run $ n $ minmax $ engine $ jobs $ all $ cut $ heuristic $ max_len
      $ x86 $ prove_none $ pddl $ scratch $ cache $ cache_dir $ stats_json))

(* ------------------------------------------------------------------ *)
(* batch: run a JSON job list through the registry + scheduler.        *)

let run_batch jobs_file workers timeout retries no_cache cache_dir x86
    stats_json =
  let src =
    match open_in_bin jobs_file with
    | ic ->
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Ok s
    | exception Sys_error msg -> Error msg
  in
  match Result.bind src Registry.Scheduler.parse_jobs with
  | Error msg -> `Error (false, Printf.sprintf "cannot read jobs: %s" msg)
  | Ok keys ->
      let root = if no_cache then None else Some (resolve_root cache_dir) in
      let b =
        Registry.Scheduler.run_batch ?root ~workers ?timeout ~retries keys
      in
      let failures = ref 0 in
      List.iteri
        (fun i r ->
          let open Registry.Scheduler in
          let tag, note =
            match r.status with
            | Cached -> ("cached", "")
            | Synthesized ->
                ("synthesized", Printf.sprintf " in %.3f s" r.elapsed)
            | Timed_out ->
                incr failures;
                ("TIMED OUT", Printf.sprintf " after %d attempts" r.attempts)
            | Failed msg ->
                incr failures;
                ("FAILED", ": " ^ msg)
          in
          Printf.printf "# job %d [%s] %s: %s%s\n" i
            (String.sub (Registry.Key.hash r.key) 0 12)
            (Registry.Key.describe r.key) tag note;
          match r.program with
          | Some p ->
              let cfg = Registry.Key.config r.key in
              print_endline
                (if x86 then Isa.Program.to_x86 cfg p
                 else Isa.Program.to_string cfg p)
          | None -> ())
        b.Registry.Scheduler.results;
      let c = b.Registry.Scheduler.counters in
      Printf.printf
        "# registry: %d hits, %d misses, %d quarantined, %d inserted\n"
        c.Registry.Store.hits c.Registry.Store.misses
        c.Registry.Store.quarantined c.Registry.Store.inserted;
      (match stats_json with
      | Some path -> write_json path (Registry.Scheduler.batch_json b)
      | None -> ());
      if !failures > 0 then begin
        Printf.eprintf "synth batch: %d of %d jobs did not produce a kernel\n"
          !failures (List.length keys);
        exit 1
      end;
      `Ok ()

let batch_cmd =
  let jobs_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOBS.json"
          ~doc:"JSON array of requests, e.g. [{\"n\":3},{\"n\":4,\"engine\":\"level\"}].")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-attempt search deadline.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"K"
          ~doc:"Extra attempts after a timeout or failure (default 1).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Synthesize every job; skip the registry.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a list of synthesis jobs: registry hits are served verified, \
          misses run across worker domains, results merge deterministically.")
    Term.(
      ret
        (const run_batch $ jobs_file $ jobs $ timeout $ retries $ no_cache
        $ cache_dir $ x86 $ stats_json))

(* ------------------------------------------------------------------ *)
(* registry list | verify | gc                                         *)

let registry_list cache_dir =
  let root = resolve_root cache_dir in
  let hashes = Registry.Store.list_hashes ~root in
  Printf.printf "# %d entries in %s (%d quarantined)\n" (List.length hashes)
    root
    (Registry.Store.quarantine_count ~root);
  List.iter
    (fun h ->
      match Registry.Store.load_unverified ~root h with
      | Ok e ->
          Printf.printf "%s  %s  len=%d cost=%.2f expanded=%d\n"
            (String.sub h 0 12)
            (Registry.Key.describe e.Registry.Store.key)
            e.Registry.Store.length e.Registry.Store.predicted_cost
            e.Registry.Store.expanded
      | Error msg -> Printf.printf "%s  <unreadable: %s>\n" (String.sub h 0 12) msg)
    hashes;
  `Ok ()

let registry_verify cache_dir =
  let root = resolve_root cache_dir in
  let checked = Registry.Store.verify_all ~root () in
  let bad = ref 0 in
  List.iter
    (fun (h, r) ->
      match r with
      | Ok _ -> Printf.printf "%s  ok\n" (String.sub h 0 12)
      | Error msg ->
          incr bad;
          Printf.printf "%s  QUARANTINED: %s\n" (String.sub h 0 12) msg)
    checked;
  Printf.printf "# %d ok, %d quarantined\n" (List.length checked - !bad) !bad;
  if !bad > 0 then exit 1;
  `Ok ()

let registry_gc cache_dir =
  let root = resolve_root cache_dir in
  let kept, purged = Registry.Store.gc ~root in
  Printf.printf "# %d entries kept, %d quarantined entries purged\n" kept purged;
  `Ok ()

let registry_cmd =
  let simple name doc f =
    Cmd.v (Cmd.info name ~doc) Term.(ret (const f $ cache_dir))
  in
  Cmd.group
    (Cmd.info "registry" ~doc:"Inspect and maintain the on-disk kernel registry.")
    [
      simple "list" "List stored entries (no verification)." registry_list;
      simple "verify"
        "Re-certify every entry; quarantine and report failures (exit 1 if any)."
        registry_verify;
      simple "gc"
        "Re-certify every entry, then delete the quarantine area."
        registry_gc;
    ]

(* ------------------------------------------------------------------ *)

let cmd =
  Cmd.group ~default:default_term
    (Cmd.info "synth" ~doc:"Synthesize branchless sorting kernels (CGO'25 reproduction)")
    [ batch_cmd; registry_cmd ]

let () = exit (Cmd.eval cmd)
