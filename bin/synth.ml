(* Command-line synthesizer: the repository's front door.

   Examples:
     synth -n 3                       fastest configuration, print the kernel
     synth -n 3 --x86                 render as x86-64 assembly
     synth -n 4 --engine level        certified-minimal search
     synth -n 4 --engine parallel -j 4   level search over 4 worker domains
     synth -n 3 --all --cut 2         enumerate all optimal kernels
     synth -n 3 --minmax              min/max (vector) kernel
     synth -n 3 --prove-none 10       show no shorter kernel exists
     synth -n 3 --pddl                emit the PDDL planning encoding
     synth -n 3 --cache               serve/populate the kernel registry
     synth -n 3 --stats-json -        dump the search-stats JSON snapshot
     synth batch jobs.json -j 4      run a job list through the registry
     synth serve --socket S.sock      long-lived daemon: LRU + coalescing
     synth client --server S.sock -n 3   one request against the daemon
     synth batch jobs.json --server S.sock   batch through the daemon
     synth registry list|verify|gc    inspect / re-certify / sweep the store
     synth registry migrate           shard a flat v1 store in place
     synth lint kernel.txt            static lints; exit 1 on ERROR findings
     synth analyze kernel.txt         full report: dataflow, abstract
                                      certification, proof-carrying DCE
     synth optimize kernel.txt        proof-carrying optimizer pipeline:
                                      every rewrite certified on all n!
                                      permutations, refused otherwise
     synth equiv a.txt b.txt          exact equivalence on all n! inputs;
                                      exit 1 + counterexample on mismatch

   Exit codes:
     0  success
     1  lint / verification / synthesis failure (or mixed batch failures;
        for equiv: the kernels differ)
     2  the search deadline passed (every retry timed out)
     3  the live-state budget was exhausted even at the final
        degradation rung
     4  registry corruption: a verify sweep found entries that had to be
        quarantined
     5  synthesis server unreachable, or a protocol error on its socket
        (client / batch --server modes)
     6  the server shed the request: overloaded (connection budget or
        request queue full, or draining) or circuit_open (the key's
        breaker is tripped); retry after the server's retry_after hint *)

open Cmdliner

let exit_timeout = 2
let exit_exhausted = 3
let exit_corrupt = 4
let exit_unreachable = 5
let exit_overloaded = 6

let exits =
  Cmd.Exit.info ~doc:"on lint, verification, or synthesis failure." 1
  :: Cmd.Exit.info ~doc:"when the search deadline passed (every retry timed out)."
       exit_timeout
  :: Cmd.Exit.info
       ~doc:
         "when the live-state budget was exhausted even at the final \
          degradation-ladder rung."
       exit_exhausted
  :: Cmd.Exit.info
       ~doc:"on registry corruption (a verify sweep quarantined entries)."
       exit_corrupt
  :: Cmd.Exit.info
       ~doc:
         "when the synthesis server is unreachable or its response was cut \
          off or unparsable (client and batch --server modes)."
       exit_unreachable
  :: Cmd.Exit.info
       ~doc:
         "when the server shed the request — overloaded (connection or \
          queue budget, or draining) or circuit_open (the key's breaker \
          is tripped). Back off for the server's retry_after hint and \
          retry."
       exit_overloaded
  :: Cmd.Exit.defaults

(* [--fault-plan] accepts the same forms as $SORTSYNTH_FAULT_PLAN: an
   inline spec when it contains '=' (specs always do — at least [seed=] or
   a [site=trigger] clause), a plan-file path otherwise. *)
let setup_faults spec =
  let r =
    match spec with
    | None -> Fault.setup ()
    | Some s ->
        Result.map Fault.install
          (if String.contains s '=' then Fault.plan_of_string s
           else Fault.load_file s)
  in
  match r with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "synth: fault plan: %s\n" msg;
      exit 1

let write_json path json =
  let json = json ^ "\n" in
  if path = "-" then print_string json
  else
    match open_out path with
    | oc ->
        output_string oc json;
        close_out oc
    | exception Sys_error msg ->
        Printf.eprintf "synth: cannot write stats JSON: %s\n" msg;
        exit 1

let resolve_root = function
  | Some dir -> dir
  | None -> Registry.Store.default_root ()

(* Verification must survive release builds (asserts do not): print a
   diagnostic and exit nonzero instead. *)
let certify_or_die cfg p =
  match Registry.Verify.certify_fast cfg p with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "synth: VERIFICATION FAILED: %s\n" msg;
      exit 1

let zero_stats =
  {
    Search.expanded = 0;
    generated = 0;
    deduped = 0;
    pruned_cut = 0;
    pruned_viability = 0;
    pruned_bound = 0;
    max_open = 0;
    elapsed = 0.;
    timeline = [];
    levels = [];
  }

(* ------------------------------------------------------------------ *)
(* Default command: synthesize one kernel.                             *)

let run n minmax engine jobs all cut heuristic max_len x86 prove_none pddl
    scratch cache cache_dir stats_json fault_plan timeout budget optimize =
  setup_faults fault_plan;
  let deadline = Option.map (fun t -> Fault.Clock.now () +. t) timeout in
  let cfg = Isa.Config.make ~n ~m:scratch in
  if pddl then begin
    print_string (Planning.Pddl.domain cfg);
    print_newline ();
    print_string (Planning.Pddl.problem cfg);
    `Ok ()
  end
  else if minmax then begin
    let opts = { Minmax.default with Minmax.all_solutions = all; max_len } in
    let r = Minmax.synthesize ~opts n in
    match r.Minmax.programs with
    | [] ->
        Printf.printf "no min/max kernel found\n";
        `Ok ()
    | p :: _ ->
        Printf.printf "# %d instructions, %d solutions, %.3f s, %d states\n"
          (Array.length p) r.Minmax.solution_count r.Minmax.elapsed
          r.Minmax.expanded;
        print_endline
          (if x86 then Minmax.Vexec.to_x86 cfg p else Minmax.Vexec.to_string cfg p);
        `Ok ()
  end
  else begin
    let key =
      Registry.Key.make ~m:scratch ~engine ~heuristic
        ~cut:(Registry.Key.cut_of_factor cut) ?max_len n
    in
    let mode =
      match prove_none with
      | Some l -> Search.Prove_none l
      | None -> if all then Search.All_optimal else Search.Find_first
    in
    let label =
      Printf.sprintf "synth n=%d engine=%s" n (Registry.Key.engine_to_string engine)
    in
    let root = resolve_root cache_dir in
    let counters = Registry.Store.fresh_counters () in
    (* Only plain find-first requests are cacheable: the store holds one
       kernel per key, not solution enumerations or non-existence proofs. *)
    let cacheable = cache && mode = Search.Find_first in
    (* Every kernel we are about to print gets a static-analysis pass; the
       verdict rides along in the stats snapshot and any ERROR finding —
       impossible for a synthesized-optimal kernel — is shouted. *)
    let analysis_note = ref None in
    let degraded_note = ref None in
    let opt_note = ref None in
    let note_opt (rep : Opt.Pipeline.report) before =
      let p = rep.Opt.Pipeline.optimized in
      opt_note :=
        Some
          (Printf.sprintf
             {|{"passes":[%s],"refused":%d,"rounds":%d,"instructions_before":%d,"instructions_after":%d,"cycles_before":%d,"cycles_after":%d}|}
             (String.concat ","
                (List.map
                   (fun (d : Opt.Pipeline.delta) ->
                     Printf.sprintf "%S" d.Opt.Pipeline.pass)
                   rep.Opt.Pipeline.deltas))
             (List.length rep.Opt.Pipeline.refusals)
             rep.Opt.Pipeline.rounds (Array.length before) (Array.length p)
             (Perf.Cost.simulated_cycles cfg before)
             (Perf.Cost.simulated_cycles cfg p))
    in
    let note_analysis p =
      let fs = Analysis.Lint.check_all cfg p in
      let errs = List.length (Analysis.Lint.errors fs) in
      let d = Analysis.Dce.run cfg p in
      analysis_note :=
        Some
          (Printf.sprintf {|{"findings":%d,"errors":%d,"eliminated":%d}|}
             (List.length fs) errs
             (List.length d.Analysis.Dce.removed));
      if errs > 0 then
        Printf.eprintf "synth: lint: %s on the produced kernel\n"
          (Analysis.Lint.summary fs)
    in
    let extra () =
      match
        (if cache then
           [ ("registry", Registry.Store.counters_json counters) ]
         else [])
        @ (match !analysis_note with
          | Some j -> [ ("analysis", j) ]
          | None -> [])
        @ (match !degraded_note with
          | Some j -> [ ("degraded", j) ]
          | None -> [])
        @ (match !opt_note with Some j -> [ ("opt", j) ] | None -> [])
        @ [
            ( "symcert",
              Printf.sprintf
                {|{"symbolic_proofs":%d,"exact_fallbacks":%d,"exact_certifications":%d}|}
                (Registry.Verify.symbolic_proofs ())
                (Registry.Verify.exact_fallbacks ())
                (Registry.Verify.certifications ()) );
          ]
      with
      | [] -> None
      | l -> Some l
    in
    let dump_stats stats =
      match stats_json with
      | None -> ()
      | Some path -> write_json path (Search.Stats.to_json ~label ?extra:(extra ()) stats)
    in
    let hit =
      if cacheable then begin
        (* Crash recovery before the first lookup: a predecessor that died
           mid-insert leaves a torn temp dir or a half-written entry. *)
        let rcv = Registry.Store.recover ~counters ~root () in
        if rcv.Registry.Store.rolled_back > 0 || rcv.Registry.Store.requarantined > 0
        then
          Printf.eprintf
            "synth: registry: recovered: %d torn insert(s) rolled back, %d \
             entries re-quarantined\n"
            rcv.Registry.Store.rolled_back rcv.Registry.Store.requarantined;
        match Registry.Store.lookup ~counters ~root key with
        | Registry.Store.Hit e -> Some e
        | Registry.Store.Quarantined reason ->
            Printf.eprintf "synth: registry: quarantined bad entry: %s\n" reason;
            None
        | Registry.Store.Miss -> None
      end
      else None
    in
    match hit with
    | Some e ->
        Printf.printf "# registry hit %s: %d instructions, verified on load\n"
          (Registry.Key.hash key) e.Registry.Store.length;
        print_endline
          (if x86 then Isa.Program.to_x86 cfg e.Registry.Store.program
           else Isa.Program.to_string cfg e.Registry.Store.program);
        note_analysis e.Registry.Store.program;
        dump_stats zero_stats;
        `Ok ()
    | None ->
        let outcome =
          match
            Registry.Scheduler.run_key ?deadline ~domains:jobs ~mode ?budget key
          with
          | o -> o
          | exception Search.Timeout ->
              Printf.eprintf "synth: search timed out%s\n"
                (match timeout with
                | Some t -> Printf.sprintf " (deadline %.3f s)" t
                | None -> "");
              exit exit_timeout
          | exception Search.Resource_exhausted { live; budget } ->
              Printf.eprintf
                "synth: state budget exhausted: %d live states%s (even at \
                 the final degradation rung)\n"
                live
                (match budget with
                | Some b -> Printf.sprintf " over budget %d" b
                | None -> ", no budget configured");
              exit exit_exhausted
        in
        let r = outcome.Registry.Scheduler.result in
        let degraded = outcome.Registry.Scheduler.degraded in
        degraded_note := Some (if degraded then "true" else "false");
        if degraded then
          Printf.eprintf
            "synth: degraded result (ladder rung %d): the kernel is verified \
             correct but not guaranteed shortest; it will not be cached\n"
            outcome.Registry.Scheduler.rung;
        (match mode with
        | Search.Prove_none l ->
            Printf.printf
              (match r.Search.optimal_length with
              | None -> format_of_string "no kernel of length <= %d exists (%d states explored)\n"
              | Some _ -> format_of_string "a kernel of length <= %d exists! (%d states)\n")
              l r.Search.stats.Search.expanded
        | _ -> (
            match r.Search.programs with
            | [] -> Printf.printf "no kernel found\n"
            | p0 :: rest ->
                certify_or_die cfg p0;
                (* Post-synthesis polish: every pipeline rewrite is
                   certified bit-identical on all n! permutations, so the
                   printed/stored kernel still carries the proof above. *)
                let p, r, provenance =
                  if not optimize then (p0, r, None)
                  else begin
                    let rep = Opt.Pipeline.run cfg p0 in
                    note_opt rep p0;
                    let p = rep.Opt.Pipeline.optimized in
                    List.iter
                      (fun (d : Opt.Pipeline.delta) ->
                        Printf.printf
                          "# opt %s: %d -> %d instructions, %d -> %d \
                           simulated cycles\n"
                          d.Opt.Pipeline.pass d.Opt.Pipeline.instructions_before
                          d.Opt.Pipeline.instructions_after
                          d.Opt.Pipeline.cycles_before d.Opt.Pipeline.cycles_after)
                      rep.Opt.Pipeline.deltas;
                    List.iter
                      (fun (f : Opt.Pipeline.refusal) ->
                        Printf.eprintf "synth: opt: refused %s: %s\n"
                          f.Opt.Pipeline.pass f.Opt.Pipeline.reason)
                      rep.Opt.Pipeline.refusals;
                    if Isa.Program.equal p p0 then (p0, r, None)
                    else
                      ( p,
                        { r with Search.programs = p :: rest },
                        Some
                          {
                            Registry.Store.optimized_from =
                              Digest.to_hex
                                (Digest.string (Isa.Program.to_string cfg p0));
                            passes =
                              List.map
                                (fun (d : Opt.Pipeline.delta) ->
                                  d.Opt.Pipeline.pass)
                                rep.Opt.Pipeline.deltas;
                          } )
                  end
                in
                note_analysis p;
                Printf.printf "# %d instructions, %d solutions, %.3f s, %d states\n"
                  (Array.length p) r.Search.solution_count
                  r.Search.stats.Search.elapsed r.Search.stats.Search.expanded;
                print_endline
                  (if x86 then Isa.Program.to_x86 cfg p else Isa.Program.to_string cfg p);
                if cacheable then
                  match
                    Registry.Store.insert ~counters ~degraded ?provenance ~root
                      key r
                  with
                  | Ok _ ->
                      Printf.printf "# registry store %s\n" (Registry.Key.hash key)
                  | Error msg ->
                      Printf.eprintf "synth: registry: cannot store kernel: %s\n" msg));
        dump_stats r.Search.stats;
        `Ok ()
  end

let n =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Array length to sort (1-6).")

let minmax = Arg.(value & flag & info [ "minmax" ] ~doc:"Use the min/max vector ISA.")

let engine =
  Arg.(
    value
    & opt (enum Registry.Key.engine_assoc) Registry.Key.Astar
    & info [ "engine" ]
        ~doc:
          "Search engine: astar (fast), level (certified minimal), or \
           parallel (level search over --jobs worker domains).")

let jobs =
  Arg.(
    value & opt int 2
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for --engine parallel and for batch mode.")

let all = Arg.(value & flag & info [ "all" ] ~doc:"Enumerate all optimal kernels.")

let cut =
  Arg.(
    value & opt float 1.0
    & info [ "cut"; "k" ] ~docv:"K"
        ~doc:"Perm-count cut factor (Section 3.5); 0 disables the cut.")

let heuristic =
  Arg.(
    value
    & opt (enum Registry.Key.heuristic_assoc) Search.Perm_count
    & info [ "heuristic" ] ~doc:"A* heuristic: none, perm, assign, or dist.")

let max_len =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-len" ] ~docv:"L" ~doc:"Length bound for the search.")

let x86 = Arg.(value & flag & info [ "x86" ] ~doc:"Print x86-64 assembly.")

let prove_none =
  Arg.(
    value
    & opt (some int) None
    & info [ "prove-none" ] ~docv:"L"
        ~doc:"Exhaustively show that no kernel of length <= L exists.")

let pddl =
  Arg.(value & flag & info [ "pddl" ] ~doc:"Emit the PDDL domain and problem.")

let scratch =
  Arg.(value & opt int 1 & info [ "scratch"; "m" ] ~doc:"Scratch registers (default 1).")

let cache =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Consult the kernel registry before searching and store the \
           synthesized kernel after. Entries are re-verified on every load.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "SORTSYNTH_REGISTRY")
        ~doc:
          "Registry root directory (default: \\$SORTSYNTH_REGISTRY or \
           .sortsynth-registry).")

let stats_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Dump a machine-readable JSON snapshot of the search statistics \
           (counters, timeline, per-level open/pruned breakdown) to $(docv), \
           or to stdout when $(docv) is '-'.")

let fault_plan =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~env:(Cmd.Env.info "SORTSYNTH_FAULT_PLAN")
        ~doc:
          "Deterministic fault-injection plan (testing only): a plan file, \
           or an inline spec like 'seed=42;registry.rename=nth:1'. Makes \
           the named chokepoints — registry writes, renames, fsyncs, \
           scheduler worker crashes, search budgets and deadlines — fail \
           on cue, deterministically in the seed.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-attempt search deadline on the monotonic clock; exit code 2 \
           when it passes.")

let state_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "state-budget" ] ~docv:"STATES"
        ~doc:
          "Cap on live search states. Exceeding it triggers the \
           degradation ladder (progressively aggressive \
           non-optimality-preserving cuts, results flagged degraded and \
           never cached); exhaustion at the final rung exits with code 3.")

let optimize_flag =
  Arg.(
    value & flag
    & info [ "optimize" ]
        ~doc:
          "Run the proof-carrying optimizer over the synthesized kernel \
           before printing/storing it. Every rewrite is certified \
           bit-identical on all n! permutations; refused passes are \
           reported and leave the kernel unchanged.")

let default_term =
  Term.(
    ret
      (const run $ n $ minmax $ engine $ jobs $ all $ cut $ heuristic $ max_len
      $ x86 $ prove_none $ pddl $ scratch $ cache $ cache_dir $ stats_json
      $ fault_plan $ timeout_arg $ state_budget $ optimize_flag))

(* ------------------------------------------------------------------ *)
(* batch: run a JSON job list through the registry + scheduler.        *)

(* The thin-client path of [batch --server]: ship the parsed job list to
   the daemon and print its answers in the local format. The kernel text
   is byte-identical to a local run — both ends print
   [Isa.Program.to_string] of the same certified program — only the
   timing commentary in the '#' lines differs. *)
let run_batch_remote sock keys timeout retries backoff budget optimize
    stats_json =
  (* Propagate an absolute deadline covering every attempt the server may
     make on our behalf, plus a second of queue/transport slack — so a
     request that would blow past our patience is shed in the server's
     queue instead of burning a worker. The batch shares one deadline but
     the server only fans out [workers + queue] jobs at a time, and we
     don't know its width — so budget for the worst case, the whole batch
     running serially. Tail jobs waiting their turn are still wanted;
     the per-attempt timeout, not the batch deadline, bounds each job. *)
  let deadline =
    Option.map
      (fun t ->
        let jobs = float_of_int (max 1 (List.length keys)) in
        Fault.Clock.now () +. (t *. float_of_int (1 + retries) *. jobs) +. 1.0)
      timeout
  in
  let params =
    { Serve.Protocol.timeout; budget; retries; backoff; optimize; deadline }
  in
  match Serve.Client.roundtrip ~socket:sock (Serve.Protocol.Batch (keys, params)) with
  | Error msg ->
      Printf.eprintf "synth batch: %s\n" msg;
      exit exit_unreachable
  | Ok (Serve.Protocol.Refused msg) ->
      `Error (false, Printf.sprintf "server refused the batch: %s" msg)
  | Ok (Serve.Protocol.Overloaded retry_after) ->
      Printf.eprintf
        "synth batch: server overloaded (connection budget); retry in %.1f s\n"
        retry_after;
      exit exit_overloaded
  | Ok (Serve.Protocol.Served _ | Serve.Protocol.Snapshot _ | Serve.Protocol.Goodbye) ->
      Printf.eprintf "synth batch: protocol error: unexpected response type\n";
      exit exit_unreachable
  | Ok (Serve.Protocol.Jobs served) ->
      if List.length served <> List.length keys then begin
        Printf.eprintf
          "synth batch: protocol error: %d jobs sent, %d answers received\n"
          (List.length keys) (List.length served);
        exit exit_unreachable
      end;
      let timeouts = ref 0
      and exhausted = ref 0
      and shed = ref 0
      and other = ref 0 in
      List.iteri
        (fun i (key, (s : Serve.Protocol.served)) ->
          let tag, note =
            match s.Serve.Protocol.status with
            | "cached" ->
                ( "cached",
                  match s.Serve.Protocol.source with
                  | Some "memory" -> " (served from memory)"
                  | _ -> "" )
            | "synthesized" when s.Serve.Protocol.degraded ->
                ( Printf.sprintf "synthesized DEGRADED (rung %d)"
                    s.Serve.Protocol.rung,
                  Printf.sprintf " in %.3f s — correct but not guaranteed \
                                  shortest; not cached"
                    s.Serve.Protocol.elapsed )
            | "synthesized" ->
                ("synthesized", Printf.sprintf " in %.3f s" s.Serve.Protocol.elapsed)
            | "timed_out" ->
                incr timeouts;
                ( "TIMED OUT",
                  Printf.sprintf " after %d attempts" s.Serve.Protocol.attempts )
            | "exhausted" ->
                incr exhausted;
                ( "EXHAUSTED",
                  match s.Serve.Protocol.error with
                  | Some e -> ": " ^ e
                  | None -> "" )
            | "crashed" ->
                incr other;
                ("CRASHED", ": worker died mid-request; job isolated")
            | "overloaded" ->
                incr shed;
                ( "OVERLOADED",
                  Printf.sprintf ": %s%s"
                    (Option.value ~default:"request shed"
                       s.Serve.Protocol.error)
                    (match s.Serve.Protocol.retry_after with
                    | Some r -> Printf.sprintf "; retry in %.1f s" r
                    | None -> "") )
            | "circuit_open" ->
                incr shed;
                ( "CIRCUIT OPEN",
                  Printf.sprintf ": %s%s"
                    (Option.value ~default:"breaker tripped for this key"
                       s.Serve.Protocol.error)
                    (match s.Serve.Protocol.retry_after with
                    | Some r -> Printf.sprintf "; retry in %.1f s" r
                    | None -> "") )
            | st ->
                incr other;
                ( String.uppercase_ascii st,
                  match s.Serve.Protocol.error with
                  | Some e -> ": " ^ e
                  | None -> "" )
          in
          Printf.printf "# job %d [%s] %s: %s%s\n" i
            (String.sub (Registry.Key.hash key) 0 12)
            (Registry.Key.describe key) tag note;
          match s.Serve.Protocol.kernel with
          | Some k -> print_endline k
          | None -> ())
        (List.combine keys served);
      (match stats_json with
      | Some path ->
          write_json path
            (Registry.Json.to_string
               (Serve.Protocol.response_to_json (Serve.Protocol.Jobs served)))
      | None -> ());
      let failures = !timeouts + !exhausted + !shed + !other in
      if failures > 0 then begin
        Printf.eprintf "synth batch: %d of %d jobs did not produce a kernel\n"
          failures (List.length keys);
        exit
          (if !other = 0 && !exhausted = 0 && !shed = 0 then exit_timeout
           else if !other = 0 && !timeouts = 0 && !shed = 0 then exit_exhausted
           else if !other = 0 && !timeouts = 0 && !exhausted = 0 then
             exit_overloaded
           else 1)
      end;
      `Ok ()

let run_batch jobs_file server workers timeout retries backoff budget no_cache
    cache_dir x86 stats_json fault_plan optimize =
  setup_faults fault_plan;
  let src =
    match open_in_bin jobs_file with
    | ic ->
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Ok s
    | exception Sys_error msg -> Error msg
  in
  match Result.bind src Registry.Scheduler.parse_jobs with
  | Error msg -> `Error (false, Printf.sprintf "cannot read jobs: %s" msg)
  | Ok keys when server <> None ->
      run_batch_remote (Option.get server) keys timeout retries backoff budget
        optimize stats_json
  | Ok keys ->
      let root = if no_cache then None else Some (resolve_root cache_dir) in
      let b =
        Registry.Scheduler.run_batch ?root ~workers ?timeout ~retries ~backoff
          ?budget ~optimize keys
      in
      let timeouts = ref 0 and exhausted = ref 0 and other = ref 0 in
      List.iteri
        (fun i r ->
          let open Registry.Scheduler in
          let tag, note =
            match r.status with
            | Cached -> ("cached", "")
            | Synthesized when r.degraded ->
                ( Printf.sprintf "synthesized DEGRADED (rung %d)" r.rung,
                  Printf.sprintf " in %.3f s — correct but not guaranteed \
                                  shortest; not cached"
                    r.elapsed )
            | Synthesized ->
                ( "synthesized",
                  Printf.sprintf " in %.3f s%s" r.elapsed
                    (if r.opt_passes = [] then ""
                     else
                       Printf.sprintf " (optimized: %s)"
                         (String.concat ", " r.opt_passes)) )
            | Timed_out ->
                incr timeouts;
                ("TIMED OUT", Printf.sprintf " after %d attempts" r.attempts)
            | Exhausted { live; budget } ->
                incr exhausted;
                ( "EXHAUSTED",
                  Printf.sprintf ": %d live states%s after %d attempts" live
                    (match budget with
                    | Some b -> Printf.sprintf " over budget %d" b
                    | None -> " (no budget configured)")
                    r.attempts )
            | Crashed ->
                incr other;
                ("CRASHED", ": worker domain died; job isolated")
            | Failed msg ->
                incr other;
                ("FAILED", ": " ^ msg)
          in
          Printf.printf "# job %d [%s] %s: %s%s\n" i
            (String.sub (Registry.Key.hash r.key) 0 12)
            (Registry.Key.describe r.key) tag note;
          match r.program with
          | Some p ->
              let cfg = Registry.Key.config r.key in
              print_endline
                (if x86 then Isa.Program.to_x86 cfg p
                 else Isa.Program.to_string cfg p)
          | None -> ())
        b.Registry.Scheduler.results;
      let c = b.Registry.Scheduler.counters in
      Printf.printf
        "# registry: %d hits, %d misses, %d quarantined, %d inserted, %d \
         recovered\n"
        c.Registry.Store.hits c.Registry.Store.misses
        c.Registry.Store.quarantined c.Registry.Store.inserted
        c.Registry.Store.recovered;
      (match stats_json with
      | Some path -> write_json path (Registry.Scheduler.batch_json b)
      | None -> ());
      let failures = !timeouts + !exhausted + !other in
      if failures > 0 then begin
        Printf.eprintf "synth batch: %d of %d jobs did not produce a kernel\n"
          failures (List.length keys);
        (* A homogeneous failure class keeps its dedicated exit code, so
           scripts can tell "give it more time" (2) from "give it more
           memory" (3); mixed or other failures collapse to 1. *)
        exit
          (if !other = 0 && !exhausted = 0 then exit_timeout
           else if !other = 0 && !timeouts = 0 then exit_exhausted
           else 1)
      end;
      `Ok ()

let batch_cmd =
  let jobs_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOBS.json"
          ~doc:"JSON array of requests, e.g. [{\"n\":3},{\"n\":4,\"engine\":\"level\"}].")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-attempt search deadline.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Extra attempts after a timeout, exhaustion, or failure \
             (default 1), with exponential backoff between attempts.")
  in
  let backoff =
    Arg.(
      value & opt float 0.05
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:
            "Base of the exponential retry backoff: attempt k sleeps \
             $(docv) * 2^(k-1) seconds (capped at 2), scaled by a \
             deterministic per-key jitter. 0 disables the sleep.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Synthesize every job; skip the registry.")
  in
  let batch_optimize =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:
            "Run the proof-carrying optimizer over each freshly synthesized \
             kernel before storing it; the registry entry records the \
             original kernel's digest and the applied passes as provenance.")
  in
  let server =
    Arg.(
      value
      & opt (some string) None
      & info [ "server" ] ~docv:"SOCK"
          ~doc:
            "Run the batch through the synthesis daemon listening on the \
             Unix socket $(docv) instead of locally: the daemon's in-memory \
             cache, request coalescing, and worker pool serve the jobs. The \
             kernel text printed is byte-identical to a local run. Exit \
             code 5 when the server is unreachable or the response is cut \
             off.")
  in
  Cmd.v
    (Cmd.info "batch" ~exits
       ~doc:
         "Run a list of synthesis jobs: registry hits are served verified, \
          misses run across worker domains, results merge deterministically. \
          Never aborts mid-batch: a timed-out, exhausted, or crashed job is \
          reported in place and the rest of the batch completes. When all \
          failures are timeouts the exit code is 2; all budget exhaustions, \
          3; anything else, 1.")
    Term.(
      ret
        (const run_batch $ jobs_file $ server $ jobs $ timeout $ retries
        $ backoff $ state_budget $ no_cache $ cache_dir $ x86 $ stats_json
        $ fault_plan $ batch_optimize))

(* ------------------------------------------------------------------ *)
(* lint / analyze: the static analyzer over kernel files.              *)

let read_file_res path =
  match open_in_bin path with
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Ok s
  | exception Sys_error msg -> Error msg

(* Kernel files carry no register-file header; unless -n/-m are given,
   infer the smallest configuration covering the registers the kernel
   names (parse once under the widest file, then re-parse under the
   inferred one so diagnostics use the right names). *)
let infer_dims src =
  let wide = Isa.Config.make ~n:6 ~m:3 in
  match Isa.Program.of_string wide src with
  | Error e -> Error e
  | Ok p ->
      let nv = ref 0 and ns = ref 0 in
      Array.iter
        (fun i ->
          List.iter
            (fun r ->
              if r < 6 then nv := max !nv (r + 1) else ns := max !ns (r - 5))
            [ i.Isa.Instr.dst; i.Isa.Instr.src ])
        p;
      Ok (max 1 !nv, !ns)

let parse_kernel ~n ~m src =
  let ( let* ) = Result.bind in
  let* n, m =
    match (n, m) with
    | Some n, Some m -> Ok (n, m)
    | _ ->
        let* inf_n, inf_m = infer_dims src in
        Ok (Option.value n ~default:inf_n, Option.value m ~default:inf_m)
  in
  match Isa.Config.make ~n ~m with
  | cfg ->
      let* numbered = Isa.Program.of_string_numbered cfg src in
      Ok (cfg, Array.map fst numbered, Array.map snd numbered)
  | exception Invalid_argument msg -> Error msg

let print_findings file lines findings =
  List.iter
    (fun f ->
      let loc =
        match f.Analysis.Lint.index with
        | Some i when i < Array.length lines ->
            Printf.sprintf "%s:%d" file lines.(i)
        | _ -> file
      in
      Printf.printf "%s: %s[%s] %s\n" loc
        (Analysis.Lint.severity_to_string f.Analysis.Lint.severity)
        (Analysis.Lint.rule_id f.Analysis.Lint.rule)
        f.Analysis.Lint.message)
    findings

(* [lint --rules]: the stable rule-id table, one row per rule in
   declaration order. The ids, severities, and descriptions are pinned to
   the README rule table by a test. *)
let print_rules json =
  if json then begin
    let parts =
      List.map
        (fun r ->
          Registry.Json.to_string
            (Registry.Json.Obj
               [
                 ("id", Registry.Json.Str (Analysis.Lint.rule_id r));
                 ( "severity",
                   Registry.Json.Str
                     (Analysis.Lint.severity_to_string
                        (Analysis.Lint.severity_of_rule r)) );
                 ("description", Registry.Json.Str (Analysis.Lint.describe r));
               ]))
        Analysis.Lint.rules
    in
    print_endline ("[" ^ String.concat "," parts ^ "]")
  end
  else
    List.iter
      (fun r ->
        Printf.printf "%-20s %-8s %s\n" (Analysis.Lint.rule_id r)
          (Analysis.Lint.severity_to_string (Analysis.Lint.severity_of_rule r))
          (Analysis.Lint.describe r))
      Analysis.Lint.rules

let run_lint files n m json rules =
  if rules then begin
    print_rules json;
    `Ok ()
  end
  else if files = [] then
    `Error (true, "no kernel files given (or pass --rules for the rule table)")
  else begin
  let reports =
    List.map
      (fun file ->
        let r =
          Result.bind (read_file_res file) (fun src -> parse_kernel ~n ~m src)
        in
        (file, r))
      files
  in
  let errors = ref 0 in
  let analyzed =
    List.map
      (fun (file, r) ->
        match r with
        | Error msg ->
            incr errors;
            (file, Error msg)
        | Ok (cfg, prog, lines) ->
            let findings = Analysis.Lint.check_all cfg prog in
            errors := !errors + List.length (Analysis.Lint.errors findings);
            (file, Ok (cfg, findings, lines)))
      reports
  in
  if json then begin
    let parts =
      List.map
        (fun (file, r) ->
          match r with
          | Error msg ->
              Registry.Json.to_string
                (Registry.Json.Obj
                   [ ("file", Registry.Json.Str file);
                     ("error", Registry.Json.Str msg) ])
          | Ok (_, findings, lines) ->
              Analysis.Lint.report_json ~file ~lines findings)
        analyzed
    in
    print_endline ("[" ^ String.concat "," parts ^ "]")
  end
  else begin
    List.iter
      (fun (file, r) ->
        match r with
        | Error msg -> Printf.printf "%s: parse error: %s\n" file msg
        | Ok (cfg, findings, lines) ->
            if findings = [] then
              Printf.printf "%s: clean (n=%d m=%d, %d instructions)\n" file
                cfg.Isa.Config.n cfg.Isa.Config.m (Array.length lines)
            else print_findings file lines findings)
      analyzed;
    let total =
      List.fold_left
        (fun acc (_, r) ->
          match r with Ok (_, fs, _) -> acc + List.length fs | Error _ -> acc)
        0 analyzed
    in
    Printf.printf "# %d file(s), %d finding(s), %d error(s)\n"
      (List.length files) total !errors
  end;
  if !errors > 0 then exit 1;
  `Ok ()
  end

let run_analyze file n m json =
  match Result.bind (read_file_res file) (fun src -> parse_kernel ~n ~m src) with
  | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
  | Ok (cfg, prog, lines) ->
      let findings = Analysis.Lint.check_all cfg prog in
      let sizes = Analysis.Absint.set_sizes cfg prog in
      let cert = Analysis.Absint.certify cfg prog in
      let d = Analysis.Dce.run cfg prog in
      let removed = d.Analysis.Dce.removed in
      if json then begin
        (* Reuse the lint report as the base object and graft the abstract-
           interpretation and DCE sections on. *)
        let base =
          match
            Registry.Json.parse (Analysis.Lint.report_json ~file ~lines findings)
          with
          | Ok (Registry.Json.Obj kvs) -> kvs
          | _ -> []
        in
        let open Registry.Json in
        let dce =
          Obj
            [
              ("removed", Int (List.length removed));
              ( "indices",
                Arr (List.map (fun r -> Int r.Analysis.Dce.index) removed) );
              ( "rules",
                Arr
                  (List.map
                     (fun r -> Str (Analysis.Lint.rule_id r.Analysis.Dce.rule))
                     removed) );
              ("passes", Int d.Analysis.Dce.passes);
              ("refused", Bool d.Analysis.Dce.refused);
              ("certified", Bool d.Analysis.Dce.certified);
              ("length", Int (Array.length d.Analysis.Dce.optimized));
              ( "program",
                Str (Isa.Program.to_string cfg d.Analysis.Dce.optimized) );
            ]
        in
        print_endline
          (to_string
             (Obj
                (base
                @ [
                    ("n", Int cfg.Isa.Config.n);
                    ("m", Int cfg.Isa.Config.m);
                    ("length", Int (Array.length prog));
                    ( "reachable",
                      Arr (Array.to_list (Array.map (fun s -> Int s) sizes)) );
                    ("certified", Bool (Result.is_ok cert));
                    ("dce", dce);
                  ])))
      end
      else begin
        Printf.printf "# %s: n=%d m=%d, %d instructions\n" file
          cfg.Isa.Config.n cfg.Isa.Config.m (Array.length prog);
        let df = Analysis.Dataflow.analyze cfg prog in
        Array.iteri
          (fun i x ->
            Printf.printf "%3d  line %-3d  %-14s %s%s\n" i lines.(i)
              (Isa.Instr.to_string cfg x)
              (match Analysis.Dataflow.reaching_cmp df i with
              | Some j -> Printf.sprintf "flags=cmp@%d" j
              | None -> "flags=initial")
              (if Analysis.Dataflow.is_effective df i then "" else "  [dead]"))
          prog;
        Printf.printf "# reachable assignments per point: %s\n"
          (String.concat " "
             (Array.to_list (Array.map string_of_int sizes)));
        (match cert with
        | Ok () ->
            Printf.printf
              "# certification: OK — all %d reachable final assignments \
               sorted (proves correctness on all %d! inputs)\n"
              sizes.(Array.length prog) cfg.Isa.Config.n
        | Error msg -> Printf.printf "# certification: FAILED — %s\n" msg);
        if findings = [] then Printf.printf "# findings: none\n"
        else begin
          Printf.printf "# findings: %s\n" (Analysis.Lint.summary findings);
          print_findings file lines findings
        end;
        if removed = [] then
          Printf.printf "# dce: nothing to remove (%d passes)\n"
            d.Analysis.Dce.passes
        else begin
          Printf.printf "# dce: removed %d instruction(s) in %d passes: %s\n"
            (List.length removed) d.Analysis.Dce.passes
            (String.concat ", "
               (List.map
                  (fun r ->
                    Printf.sprintf "%d[%s]" r.Analysis.Dce.index
                      (Analysis.Lint.rule_id r.Analysis.Dce.rule))
                  removed));
          Printf.printf "# dce: %d instructions remain, re-certification %s\n"
            (Array.length d.Analysis.Dce.optimized)
            (if d.Analysis.Dce.refused then "REFUSED THE REWRITE"
             else if d.Analysis.Dce.certified then "OK"
             else "n/a (input does not sort)");
          print_endline (Isa.Program.to_string cfg d.Analysis.Dce.optimized)
        end
      end;
      `Ok ()

let files_arg =
  Arg.(
    value
    & pos_all file []
    & info [] ~docv:"KERNEL.txt"
        ~doc:"Kernel files in Isa.Program.to_string form ('mov s1 r1' …).")

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"KERNEL.txt"
        ~doc:"Kernel file in Isa.Program.to_string form.")

let opt_n =
  Arg.(
    value
    & opt (some int) None
    & info [ "n" ] ~docv:"N"
        ~doc:
          "Value registers (default: inferred from the highest register the \
           kernel names).")

let opt_m =
  Arg.(
    value
    & opt (some int) None
    & info [ "scratch"; "m" ] ~docv:"M"
        ~doc:"Scratch registers (default: inferred, see $(b,--n)).")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit a machine-readable JSON report on stdout.")

let rules_flag =
  Arg.(
    value & flag
    & info [ "rules" ]
        ~doc:
          "Print the stable rule-id table (id, severity, one-line \
           description) and exit; no kernel files are read.")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static analyzer over kernel files: dataflow lints (dead \
          writes, unconsumed cmps, orphan cmovs, uninitialized scratch \
          reads, trailing code) plus the permutation-set abstract \
          interpreter (semantic no-ops, sortedness certification). Exits 1 \
          on any ERROR finding. With $(b,--rules), prints the stable \
          rule-id table (id, severity, description) instead.")
    Term.(
      ret (const run_lint $ files_arg $ opt_n $ opt_m $ json_flag $ rules_flag))

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Full static-analysis report for one kernel: per-instruction \
          dataflow facts, reachable-assignment counts per program point, \
          the abstract correctness certificate, lint findings, and the \
          proof-carrying DCE result (with the shrunk kernel when anything \
          was removable).")
    Term.(ret (const run_analyze $ file_arg $ opt_n $ opt_m $ json_flag))

(* ------------------------------------------------------------------ *)
(* devlint: the self-hosted concurrency-and-discipline linter over this
   repository's own OCaml source (lib/ + bin/), on compiler-libs. The
   committed devlint.waivers file is the only silencing mechanism;
   unwaived findings (or parse errors) exit 1, which is the CI gate.   *)

let run_devlint paths json rules waivers_path =
  if rules then begin
    if json then begin
      let parts =
        List.map
          (fun r ->
            Registry.Json.to_string
              (Registry.Json.Obj
                 [
                   ("id", Registry.Json.Str (Devlint.Rule.id r));
                   ("title", Registry.Json.Str (Devlint.Rule.title r));
                   ("description", Registry.Json.Str (Devlint.Rule.describe r));
                   ("hint", Registry.Json.Str (Devlint.Rule.hint r));
                 ]))
          Devlint.Rule.all
      in
      print_endline ("[" ^ String.concat "," parts ^ "]")
    end
    else
      List.iter
        (fun r ->
          Printf.printf "%-7s %-22s %s\n" (Devlint.Rule.id r)
            (Devlint.Rule.title r) (Devlint.Rule.describe r))
        Devlint.Rule.all;
    `Ok ()
  end
  else
    match Devlint.Waivers.load waivers_path with
    | Error e -> `Error (false, e)
    | Ok waivers ->
        let files = Devlint.Lint.files_under paths in
        let errors = ref [] in
        let findings = ref [] in
        List.iter
          (fun f ->
            match Devlint.Lint.check_file f with
            | Error e -> errors := (f, e) :: !errors
            | Ok fs -> findings := fs :: !findings)
          files;
        let all =
          List.sort Devlint.Lint.compare_finding
            (List.concat (List.rev !findings))
        in
        let unwaived, waived, unused = Devlint.Waivers.split waivers all in
        let run =
          {
            Devlint.Report.unwaived;
            waived;
            unused;
            errors = List.rev !errors;
            files_scanned = List.length files;
          }
        in
        print_string
          (if json then Devlint.Report.json run ^ "\n"
           else Devlint.Report.text run);
        if Devlint.Report.exit_code run <> 0 then exit 1;
        `Ok ()

let devlint_paths =
  Arg.(
    value
    & pos_all string [ "lib"; "bin" ]
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to scan ($(b,.ml) files, recursively; \
           default: $(b,lib bin)).")

let devlint_waivers_arg =
  Arg.(
    value
    & opt string "devlint.waivers"
    & info [ "waivers" ] ~docv:"FILE"
        ~doc:
          "Waiver file: one $(b,'DLxxx path justification') per line, \
           justification mandatory. The only way to silence a finding.")

let devlint_rules_flag =
  Arg.(
    value & flag
    & info [ "rules" ]
        ~doc:
          "Print the stable devlint rule table (id, title, one-line \
           description) and exit; nothing is scanned.")

let devlint_cmd =
  Cmd.v
    (Cmd.info "devlint"
       ~doc:
         "Lint this repository's own source for Domain-parallel and \
          durability discipline: mutable state shared into Domain.spawn \
          without Atomic/Mutex, raw wall-clock reads and unwarped sleeps \
          outside lib/fault, Sys.rename without fsync, double-closed \
          descriptors, and catch-all exception swallows in daemon paths. \
          Findings are silenced only via the committed waiver file; any \
          unwaived finding exits 1. With $(b,--rules), prints the stable \
          rule-id table instead.")
    Term.(
      ret
        (const run_devlint $ devlint_paths $ json_flag $ devlint_rules_flag
        $ devlint_waivers_arg))

(* ------------------------------------------------------------------ *)
(* certify: the symbolic sortedness certifier, exact fallback on
   Unknown — the CLI face of [Registry.Verify.certify_fast].           *)

let run_certify files n m json max_worlds =
  if files = [] then `Error (true, "no kernel files given")
  else begin
    let failures = ref 0 in
    let reports =
      List.map
        (fun file ->
          match
            Result.bind (read_file_res file) (fun src ->
                parse_kernel ~n ~m src)
          with
          | Error msg ->
              incr failures;
              (file, Error msg)
          | Ok (cfg, prog, _lines) ->
              let verdict =
                Analysis.Symcert.certify ?max_worlds cfg prog
              in
              (* Soundness contract: Unknown MUST fall back to the exact
                 n! check; Proved/Refuted are final (Refuted is already
                 execution-confirmed). *)
              let certified, method_, detail =
                match verdict with
                | Analysis.Symcert.Proved ->
                    (true, "symbolic", Analysis.Symcert.explain verdict)
                | Analysis.Symcert.Refuted _ ->
                    (false, "symbolic", Analysis.Symcert.explain verdict)
                | Analysis.Symcert.Unknown reason -> (
                    match Registry.Verify.certify cfg prog with
                    | Ok () ->
                        ( true,
                          "exact",
                          Printf.sprintf
                            "unknown symbolically (%s); proved by the \
                             exhaustive n! check"
                            reason )
                    | Error msg -> (false, "exact", msg))
              in
              if not certified then incr failures;
              ( file,
                Ok
                  ( cfg,
                    Analysis.Symcert.verdict_name verdict,
                    certified,
                    method_,
                    detail ) ))
        files
    in
    if json then begin
      let parts =
        List.map
          (fun (file, r) ->
            let fields =
              match r with
              | Error msg ->
                  [ ("file", Registry.Json.Str file);
                    ("error", Registry.Json.Str msg) ]
              | Ok (cfg, verdict, certified, method_, detail) ->
                  [
                    ("file", Registry.Json.Str file);
                    ("n", Registry.Json.Int cfg.Isa.Config.n);
                    ("m", Registry.Json.Int cfg.Isa.Config.m);
                    ("verdict", Registry.Json.Str verdict);
                    ("certified", Registry.Json.Bool certified);
                    ("method", Registry.Json.Str method_);
                    ("detail", Registry.Json.Str detail);
                  ]
            in
            Registry.Json.to_string (Registry.Json.Obj fields))
          reports
      in
      print_endline ("[" ^ String.concat "," parts ^ "]")
    end
    else
      List.iter
        (fun (file, r) ->
          match r with
          | Error msg -> Printf.printf "%s: parse error: %s\n" file msg
          | Ok (_, verdict, certified, method_, detail) ->
              Printf.printf "%s: %s%s (%s): %s\n" file
                (if certified then "certified" else "NOT CERTIFIED")
                (Printf.sprintf " [%s]" verdict)
                method_ detail)
        reports;
    if !failures > 0 then exit 1;
    `Ok ()
  end

let certify_cmd =
  let max_worlds =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-worlds" ] ~docv:"K"
          ~doc:
            "World budget for the symbolic certifier (default 20000). \
             Exceeding it yields an $(i,unknown) verdict and the exact \
             fallback, never an unsound answer.")
  in
  Cmd.v
    (Cmd.info "certify" ~exits
       ~doc:
         "Certify kernel files as sorting kernels: the symbolic \
          order-poset certifier first (polynomial, no n! enumeration), \
          the paper's exhaustive permutation check only on an \
          $(i,unknown) verdict. A $(i,refuted) verdict always carries an \
          execution-confirmed counterexample. Exits 1 when any file \
          fails to certify (or to parse).")
    Term.(
      ret
        (const run_certify $ files_arg $ opt_n $ opt_m $ json_flag
       $ max_worlds))

(* ------------------------------------------------------------------ *)
(* optimize / equiv: the proof-carrying optimizer and the translation- *)
(* validation equivalence engine over kernel files.                    *)

let write_text path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* The 0-1 shortcut is sound only once the kernel is {e syntactically} a
   comparator network (paper §2.3) — hence extraction first, and the
   2^n binary check only on the extracted network. *)
let network_verdict cfg p =
  match Opt.Extract.run cfg p with
  | Opt.Extract.Rejected { index; reason } -> Error (index, reason)
  | Opt.Extract.Network net ->
      let optimal_size =
        if cfg.Isa.Config.n >= 1 && cfg.Isa.Config.n <= 8 then
          Some (Sortnet.size (Sortnet.optimal cfg.Isa.Config.n))
        else None
      in
      Ok (net, Sortnet.sorts_all_binary net, optimal_size)

let run_optimize file n m json out x86 fault_plan =
  setup_faults fault_plan;
  match Result.bind (read_file_res file) (fun src -> parse_kernel ~n ~m src) with
  | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
  | Ok (cfg, prog, _lines) ->
      let rep = Opt.Pipeline.run cfg prog in
      let p = rep.Opt.Pipeline.optimized in
      let before = Perf.Cost.analyze cfg prog
      and after = Perf.Cost.analyze cfg p in
      let cyc_before = Perf.Cost.simulated_cycles cfg prog
      and cyc_after = Perf.Cost.simulated_cycles cfg p in
      let rendered =
        if x86 then Isa.Program.to_x86 cfg p else Isa.Program.to_string cfg p
      in
      let net = network_verdict cfg p in
      if json then begin
        let open Registry.Json in
        let delta_obj (d : Opt.Pipeline.delta) =
          Obj
            [
              ("pass", Str d.Opt.Pipeline.pass);
              ("round", Int d.Opt.Pipeline.round);
              ("instructions_before", Int d.Opt.Pipeline.instructions_before);
              ("instructions_after", Int d.Opt.Pipeline.instructions_after);
              ("cycles_before", Int d.Opt.Pipeline.cycles_before);
              ("cycles_after", Int d.Opt.Pipeline.cycles_after);
              ("critical_before", Int d.Opt.Pipeline.critical_before);
              ("critical_after", Int d.Opt.Pipeline.critical_after);
            ]
        in
        let refusal_obj (f : Opt.Pipeline.refusal) =
          Obj
            [
              ("pass", Str f.Opt.Pipeline.pass);
              ("round", Int f.Opt.Pipeline.round);
              ("reason", Str f.Opt.Pipeline.reason);
            ]
        in
        (* "passes" is the deduplicated applied-pass set in sorted order
           (byte-stable); "deltas" keeps application order, which is
           deterministic for a given input. *)
        let passes =
          List.sort_uniq compare
            (List.map
               (fun (d : Opt.Pipeline.delta) -> d.Opt.Pipeline.pass)
               rep.Opt.Pipeline.deltas)
        in
        let network =
          match net with
          | Error (index, reason) ->
              Obj
                [
                  ("extracted", Bool false);
                  ("index", Int index);
                  ("reason", Str reason);
                ]
          | Ok (net, zero_one, optimal_size) ->
              Obj
                ([
                   ("extracted", Bool true);
                   ( "comparators",
                     Arr
                       (List.map
                          (fun (i, j) -> Arr [ Int i; Int j ])
                          net.Sortnet.comparators) );
                   ("size", Int (Sortnet.size net));
                   ("zero_one_certified", Bool zero_one);
                 ]
                @
                match optimal_size with
                | Some s -> [ ("optimal_size", Int s) ]
                | None -> [])
        in
        print_endline
          (to_string
             (Obj
                [
                  ("file", Str file);
                  ("n", Int cfg.Isa.Config.n);
                  ("m", Int cfg.Isa.Config.m);
                  ("instructions_before", Int before.Perf.Cost.instructions);
                  ("instructions_after", Int after.Perf.Cost.instructions);
                  ("cycles_before", Int cyc_before);
                  ("cycles_after", Int cyc_after);
                  ("critical_before", Int before.Perf.Cost.critical_path);
                  ("critical_after", Int after.Perf.Cost.critical_path);
                  ("rounds", Int rep.Opt.Pipeline.rounds);
                  ("certified", Bool rep.Opt.Pipeline.certified);
                  ("passes", Arr (List.map (fun s -> Str s) passes));
                  ("deltas", Arr (List.map delta_obj rep.Opt.Pipeline.deltas));
                  ( "refusals",
                    Arr (List.map refusal_obj rep.Opt.Pipeline.refusals) );
                  ("network", network);
                  ("program", Str rendered);
                ]))
      end
      else begin
        Printf.printf "# %s: n=%d m=%d\n" file cfg.Isa.Config.n
          cfg.Isa.Config.m;
        List.iter
          (fun (d : Opt.Pipeline.delta) ->
            Printf.printf
              "# round %d %s: %d -> %d instructions, %d -> %d simulated \
               cycles, %d -> %d critical path\n"
              d.Opt.Pipeline.round d.Opt.Pipeline.pass
              d.Opt.Pipeline.instructions_before
              d.Opt.Pipeline.instructions_after d.Opt.Pipeline.cycles_before
              d.Opt.Pipeline.cycles_after d.Opt.Pipeline.critical_before
              d.Opt.Pipeline.critical_after)
          rep.Opt.Pipeline.deltas;
        List.iter
          (fun (f : Opt.Pipeline.refusal) ->
            Printf.printf "# round %d %s: REFUSED — %s\n" f.Opt.Pipeline.round
              f.Opt.Pipeline.pass f.Opt.Pipeline.reason)
          rep.Opt.Pipeline.refusals;
        Printf.printf
          "# total: %d -> %d instructions, %d -> %d simulated cycles, %d -> \
           %d critical path (%d round(s))\n"
          before.Perf.Cost.instructions after.Perf.Cost.instructions cyc_before
          cyc_after before.Perf.Cost.critical_path after.Perf.Cost.critical_path
          rep.Opt.Pipeline.rounds;
        Printf.printf "# certified: %s\n"
          (if rep.Opt.Pipeline.certified then
             Printf.sprintf "OK — sorts all %d! permutations"
               cfg.Isa.Config.n
           else "NO (input does not certify)");
        (match net with
        | Ok (net, zero_one, optimal_size) ->
            Printf.printf
              "# network: extracted %d comparator(s) [%s], 0-1 certified: %s%s\n"
              (Sortnet.size net)
              (String.concat " "
                 (List.map
                    (fun (i, j) -> Printf.sprintf "(%d,%d)" i j)
                    net.Sortnet.comparators))
              (if zero_one then "yes" else "NO")
              (match optimal_size with
              | Some s when Sortnet.size net = s -> " — size-optimal"
              | Some s ->
                  Printf.sprintf " — known optimal is %d comparator(s)" s
              | None -> "")
        | Error (index, reason) ->
            Printf.printf "# network: not extractable at instruction %d: %s\n"
              index reason);
        match out with
        | None -> print_string rendered
        | Some _ -> ()
      end;
      (match out with
      | Some path ->
          write_text path rendered;
          if not json then Printf.printf "# wrote %s\n" path
      | None -> ());
      `Ok ()

let run_equiv file_a file_b n m json =
  let ( let* ) = Result.bind in
  let parsed =
    let* src_a = read_file_res file_a in
    let* src_b = read_file_res file_b in
    (* Both kernels must run in one register file: unless -n/-m pin it,
       take the widest configuration either file needs. *)
    let* n, m =
      match (n, m) with
      | Some n, Some m -> Ok (n, m)
      | _ ->
          let* na, ma = infer_dims src_a in
          let* nb, mb = infer_dims src_b in
          Ok
            ( Option.value n ~default:(max na nb),
              Option.value m ~default:(max ma mb) )
    in
    let* cfg, pa, _ = parse_kernel ~n:(Some n) ~m:(Some m) src_a in
    let* _, pb, _ = parse_kernel ~n:(Some n) ~m:(Some m) src_b in
    Ok (cfg, pa, pb)
  in
  match parsed with
  | Error msg -> `Error (false, msg)
  | Ok (cfg, pa, pb) -> (
      let ints a = Registry.Json.Arr (List.map (fun v -> Registry.Json.Int v) (Array.to_list a)) in
      match Opt.Equiv.compare cfg pa pb with
      | Opt.Equiv.Equivalent ->
          if json then
            print_endline
              (Registry.Json.to_string
                 (Registry.Json.Obj
                    [
                      ("a", Registry.Json.Str file_a);
                      ("b", Registry.Json.Str file_b);
                      ("n", Registry.Json.Int cfg.Isa.Config.n);
                      ("m", Registry.Json.Int cfg.Isa.Config.m);
                      ("equivalent", Registry.Json.Bool true);
                    ]))
          else
            Printf.printf
              "%s and %s are equivalent: bit-identical value registers on \
               all %d! permutations\n"
              file_a file_b cfg.Isa.Config.n;
          `Ok ()
      | Opt.Equiv.Differs { input; out_a; out_b } ->
          if json then
            print_endline
              (Registry.Json.to_string
                 (Registry.Json.Obj
                    [
                      ("a", Registry.Json.Str file_a);
                      ("b", Registry.Json.Str file_b);
                      ("n", Registry.Json.Int cfg.Isa.Config.n);
                      ("m", Registry.Json.Int cfg.Isa.Config.m);
                      ("equivalent", Registry.Json.Bool false);
                      ("input", ints input);
                      ("output_a", ints out_a);
                      ("output_b", ints out_b);
                    ]))
          else begin
            let arr a =
              String.concat " " (List.map string_of_int (Array.to_list a))
            in
            Printf.printf "%s and %s DIFFER\n" file_a file_b;
            Printf.printf "counterexample input: %s\n" (arr input);
            Printf.printf "%s output:            %s\n" file_a (arr out_a);
            Printf.printf "%s output:            %s\n" file_b (arr out_b)
          end;
          exit 1)

let optimize_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the optimized kernel to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "optimize" ~exits
       ~doc:
         "Run the proof-carrying pass pipeline (copy propagation, redundant-\
          cmp elimination, cmov coalescing, DCE, canonical renaming, list \
          scheduling) to fixpoint over a kernel file. Every rewrite is \
          accepted only with a certificate — bit-identical value registers \
          on all n! permutations, re-checked by the abstract certifier — \
          and refused otherwise, leaving the kernel unchanged. Also reports \
          whether the result is syntactically a comparator network (then \
          0-1 certified and compared against the known-optimal size).")
    Term.(
      ret
        (const run_optimize $ file_arg $ opt_n $ opt_m $ json_flag $ out_arg
        $ x86 $ fault_plan))

let equiv_cmd =
  let file_b =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"B.txt" ~doc:"Second kernel file.")
  in
  Cmd.v
    (Cmd.info "equiv" ~exits
       ~doc:
         "Decide whether two kernel files compute identical value-register \
          outputs on every input, by exact comparison over all n! \
          permutations (translation validation, not the 0-1 shortcut — \
          sound for arbitrary cmov kernels, not just networks). Exits 0 \
          when equivalent; exits 1 with a concrete counterexample \
          permutation and both outputs when they differ.")
    Term.(
      ret (const run_equiv $ file_arg $ file_b $ opt_n $ opt_m $ json_flag))

(* ------------------------------------------------------------------ *)
(* registry list | verify | gc                                         *)

let registry_list cache_dir count =
  let root = resolve_root cache_dir in
  (* One walk answers every count — entry names, layout split, torn temp
     dirs, quarantine population — so [--count] never opens a meta.json
     and the full listing only reads metadata for the lines it prints. *)
  let s = Registry.Store.scan ~root in
  Printf.printf "# %d entries in %s (%d quarantined)\n"
    (List.length s.Registry.Store.hashes)
    root s.Registry.Store.quarantined;
  if count then begin
    Printf.printf "# layout: %d sharded, %d flat (v1), %d shard dir(s), %d \
                   torn temp dir(s)\n"
      (List.length s.Registry.Store.hashes - List.length s.Registry.Store.flat)
      (List.length s.Registry.Store.flat)
      s.Registry.Store.shards
      (List.length s.Registry.Store.tmp);
    `Ok ()
  end
  else begin
    List.iter
      (fun h ->
        match Registry.Store.load_unverified ~root h with
        | Ok e ->
            Printf.printf "%s  %s  len=%d cost=%.2f expanded=%d\n"
              (String.sub h 0 12)
              (Registry.Key.describe e.Registry.Store.key)
              e.Registry.Store.length e.Registry.Store.predicted_cost
              e.Registry.Store.expanded
        | Error msg ->
            Printf.printf "%s  <unreadable: %s>\n" (String.sub h 0 12) msg)
      s.Registry.Store.hashes;
    `Ok ()
  end

let registry_migrate cache_dir =
  let root = resolve_root cache_dir in
  let m = Registry.Store.migrate ~root () in
  Printf.printf "# migrated: %d moved into shards, %d already sharded, %d \
                 conflict(s) left in place\n"
    m.Registry.Store.moved m.Registry.Store.already_sharded
    m.Registry.Store.conflicts;
  if m.Registry.Store.conflicts > 0 then
    Printf.eprintf
      "synth: registry: %d flat entries have a sharded twin that wins every \
       lookup; inspect and remove the flat copies manually\n"
      m.Registry.Store.conflicts;
  `Ok ()

let registry_verify cache_dir lint stats_json =
  let root = resolve_root cache_dir in
  let counters = Registry.Store.fresh_counters () in
  let rcv = Registry.Store.recover ~counters ~root () in
  if rcv.Registry.Store.rolled_back > 0 then
    Printf.printf "# recovered: %d torn insert(s) rolled back\n"
      rcv.Registry.Store.rolled_back;
  if rcv.Registry.Store.requarantined > 0 then
    Printf.printf "# recovered: %d half-written entries re-quarantined\n"
      rcv.Registry.Store.requarantined;
  let checked = Registry.Store.verify_all ~counters ~lint ~root () in
  let bad = ref 0 in
  List.iter
    (fun (h, r) ->
      match r with
      | Ok _ -> Printf.printf "%s  ok\n" (String.sub h 0 12)
      | Error msg ->
          incr bad;
          Printf.printf "%s  QUARANTINED: %s\n" (String.sub h 0 12) msg)
    checked;
  Printf.printf "# %d ok, %d quarantined (%d by the static analyzer)\n"
    (List.length checked - !bad)
    !bad counters.Registry.Store.lint_errors;
  (match stats_json with
  | None -> ()
  | Some path ->
      let counters_value =
        match Registry.Json.parse (Registry.Store.counters_json counters) with
        | Ok v -> v
        | Error _ -> Registry.Json.Null
      in
      write_json path
        (Registry.Json.to_string
           (Registry.Json.Obj
              [
                ("label", Registry.Json.Str "registry verify");
                ("root", Registry.Json.Str root);
                ("lint", Registry.Json.Bool lint);
                ("checked", Registry.Json.Int (List.length checked));
                ("ok", Registry.Json.Int (List.length checked - !bad));
                ("registry", counters_value);
              ])));
  (* Any corrupted entry — found by the recovery scan or the certify
     sweep — is the documented "registry corruption" exit code. *)
  if !bad + rcv.Registry.Store.requarantined > 0 then exit exit_corrupt;
  `Ok ()

let registry_gc cache_dir dry_run =
  let root = resolve_root cache_dir in
  (* Recovery mutates the store (rollback / re-quarantine), so a dry run
     must skip it: --dry-run touches nothing on disk. *)
  if not dry_run then begin
    let rcv = Registry.Store.recover ~root () in
    if rcv.Registry.Store.rolled_back > 0 then
      Printf.printf "# recovered: %d torn insert(s) rolled back\n"
        rcv.Registry.Store.rolled_back
  end;
  let report = Registry.Store.gc ~dry_run ~root () in
  List.iter
    (fun v ->
      Printf.printf "%s %s\n" (if dry_run then "would purge" else "purged") v)
    report.Registry.Store.victims;
  Printf.printf "# %d entries kept, %d purged%s, %d bytes %s\n"
    report.Registry.Store.kept report.Registry.Store.purged
    (if dry_run then " (dry run: nothing removed)" else "")
    report.Registry.Store.reclaimed_bytes
    (if dry_run then "would be reclaimed" else "reclaimed");
  `Ok ()

let registry_cmd =
  let count_flag =
    Arg.(
      value & flag
      & info [ "count" ]
          ~doc:
            "Print only the counts (entries, layout split, quarantine) from \
             a single directory walk — no per-entry metadata is read.")
  in
  let list_cmd =
    Cmd.v
      (Cmd.info "list" ~doc:"List stored entries (no verification).")
      Term.(ret (const registry_list $ cache_dir $ count_flag))
  in
  let migrate_cmd =
    Cmd.v
      (Cmd.info "migrate"
         ~doc:
           "Rename every flat v1 entry (store/<hash>) into its shard \
            directory (store/<hh>/<hash>). Each move is one atomic rename; \
            interrupting and re-running is safe, and both layouts stay \
            readable throughout. Flat entries whose sharded twin already \
            exists are reported and left in place.")
      Term.(ret (const registry_migrate $ cache_dir))
  in
  let lint_flag =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Also run the static analyzer over every entry that certifies; \
             quarantine entries with ERROR-level findings (a provably \
             removable instruction in a supposedly optimal kernel).")
  in
  let verify_cmd =
    Cmd.v
      (Cmd.info "verify" ~exits
         ~doc:
           "Run the crash-recovery scan, then re-certify every entry; \
            quarantine and report failures (exit 4 if any entry was \
            corrupted). With $(b,--lint), entries must also be lint-clean.")
      Term.(ret (const registry_verify $ cache_dir $ lint_flag $ stats_json))
  in
  let dry_run_flag =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:
            "Report what gc would remove (victims, entry count, reclaimable \
             bytes) without touching the store — no recovery, no \
             quarantining, no deletion.")
  in
  let gc_cmd =
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Re-certify every entry, quarantine failures, then delete the \
            quarantine area, reporting the reclaimed entries and bytes. \
            With $(b,--dry-run), only report what would be removed.")
      Term.(ret (const registry_gc $ cache_dir $ dry_run_flag))
  in
  Cmd.group
    (Cmd.info "registry" ~doc:"Inspect and maintain the on-disk kernel registry.")
    [ list_cmd; verify_cmd; gc_cmd; migrate_cmd ]

(* ------------------------------------------------------------------ *)
(* serve / client: the long-lived synthesis daemon and its thin client. *)

let run_serve socket cache_dir capacity workers max_conns max_queue
    breaker_threshold breaker_cooldown drain_grace stats_json fault_plan =
  setup_faults fault_plan;
  let root = resolve_root cache_dir in
  let cfg =
    {
      Serve.Server.socket_path = socket;
      root;
      capacity;
      workers;
      max_conns;
      max_queue;
      breaker_threshold;
      breaker_cooldown;
      drain_grace;
    }
  in
  let t = Serve.Server.create cfg in
  Serve.Server.run
    ~on_ready:(fun () -> Printf.printf "# serve: listening on %s\n%!" socket)
    ~handle_signals:true t;
  (match stats_json with
  | Some path ->
      write_json path (Registry.Json.to_string (Serve.Server.snapshot t))
  | None -> ());
  `Ok ()

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix domain socket to listen on (unlinked and rebound).")
  in
  let capacity =
    Arg.(
      value & opt int 128
      & info [ "capacity" ] ~docv:"N"
          ~doc:
            "In-memory LRU capacity in entries. Warm hits are served with \
             zero directory scans and zero re-certifications; 0 disables \
             the memory layer.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers"; "j" ] ~docv:"N"
          ~doc:"Persistent search worker domains (default 2).")
  in
  let max_conns =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent connection budget. A connection over the budget is \
             answered with one typed 'overloaded' line (never silently \
             dropped) and closed; clients see exit code 6.")
  in
  let max_queue =
    Arg.(
      value & opt int 32
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Bounded pending-request queue in front of the worker pool. A \
             request that would wait behind $(docv) queued jobs is shed \
             with a typed 'overloaded' response and a retry_after hint.")
  in
  let breaker_threshold =
    Arg.(
      value & opt int 3
      & info [ "breaker-threshold" ] ~docv:"K"
          ~doc:
            "Poison-key circuit breaker: $(docv) consecutive crashed or \
             budget-exhausted outcomes for the same canonical key trip its \
             breaker; further requests fast-fail with 'circuit_open' \
             instead of burning workers.")
  in
  let breaker_cooldown =
    Arg.(
      value & opt float 5.0
      & info [ "breaker-cooldown" ] ~docv:"SECONDS"
          ~doc:
            "Seconds a tripped breaker stays open before half-opening to \
             admit a single probe request (monotonic clock).")
  in
  let drain_grace =
    Arg.(
      value & opt float 5.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:
            "Graceful-drain deadline: on SIGTERM/SIGINT the daemon stops \
             accepting, sheds queued work, waits up to $(docv) seconds for \
             in-flight jobs, then persists the LRU warm set for the next \
             start.")
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Run the long-lived synthesis daemon: newline-delimited JSON over \
          a Unix domain socket (ops: lookup, synth, batch, stats, \
          shutdown). Three serving layers — a bounded in-memory LRU over \
          certified entries, the sharded on-disk registry (crash recovery \
          at open and after any quarantine), and a persistent worker pool \
          running the scheduler's degradation ladder. Identical concurrent \
          requests coalesce onto one search. Admission control sheds \
          excess load with typed responses ($(b,--max-conns), \
          $(b,--max-queue)), a per-key circuit breaker fast-fails poison \
          keys, and SIGTERM/SIGINT drain gracefully — finishing in-flight \
          work and persisting the warm set, restored (re-certified) on \
          restart. Runs until a shutdown request or signal arrives; with \
          $(b,--stats-json), writes the final counter snapshot on exit.")
    Term.(
      ret
        (const run_serve $ socket $ cache_dir $ capacity $ workers $ max_conns
        $ max_queue $ breaker_threshold $ breaker_cooldown $ drain_grace
        $ stats_json $ fault_plan))

let print_served (s : Serve.Protocol.served) =
  Printf.printf "# %s%s%s: %s (%.3f s server-side)\n" s.Serve.Protocol.status
    (match s.Serve.Protocol.source with Some src -> " from " ^ src | None -> "")
    (if s.Serve.Protocol.coalesced then ", coalesced" else "")
    s.Serve.Protocol.canonical s.Serve.Protocol.elapsed;
  (match s.Serve.Protocol.error with
  | Some e -> Printf.eprintf "synth client: server: %s\n" e
  | None -> ());
  (match s.Serve.Protocol.kernel with Some k -> print_endline k | None -> ());
  match s.Serve.Protocol.status with
  | "cached" | "synthesized" -> `Ok ()
  | "timed_out" -> exit exit_timeout
  | "exhausted" -> exit exit_exhausted
  | "overloaded" | "circuit_open" ->
      (match s.Serve.Protocol.retry_after with
      | Some r -> Printf.eprintf "synth client: retry in %.1f s\n" r
      | None -> ());
      exit exit_overloaded
  | _ -> exit 1

let run_client server op n scratch engine heuristic cut max_len timeout budget
    deadline optimize stats_json fault_plan =
  setup_faults fault_plan;
  (* The absolute deadline propagated with the request: --deadline wins,
     else it is derived from --timeout (per-attempt budget for the
     server's default 1+1 attempts, plus a second of slack). *)
  let abs_deadline =
    match deadline with
    | Some d -> Some (Fault.Clock.now () +. d)
    | None ->
        Option.map (fun t -> Fault.Clock.now () +. (t *. 2.0) +. 1.0) timeout
  in
  let req =
    match op with
    | `Stats -> Serve.Protocol.Stats
    | `Shutdown -> Serve.Protocol.Shutdown
    | (`Lookup | `Synth) as op ->
        let key =
          Registry.Key.make ~m:scratch ~engine ~heuristic
            ~cut:(Registry.Key.cut_of_factor cut) ?max_len n
        in
        if op = `Lookup then Serve.Protocol.Lookup key
        else
          Serve.Protocol.Synth
            ( key,
              {
                Serve.Protocol.default_params with
                timeout;
                budget;
                optimize;
                deadline = abs_deadline;
              } )
  in
  match Serve.Client.roundtrip ~socket:server req with
  | Error msg ->
      Printf.eprintf "synth client: %s\n" msg;
      exit exit_unreachable
  | Ok (Serve.Protocol.Refused msg) ->
      Printf.eprintf "synth client: server refused: %s\n" msg;
      exit 1
  | Ok (Serve.Protocol.Overloaded retry_after) ->
      Printf.eprintf
        "synth client: server overloaded (connection budget); retry in %.1f s\n"
        retry_after;
      exit exit_overloaded
  | Ok Serve.Protocol.Goodbye ->
      Printf.printf "# server shutting down\n";
      `Ok ()
  | Ok (Serve.Protocol.Snapshot j) ->
      let rendered = Registry.Json.to_string j in
      (match stats_json with
      | Some path -> write_json path rendered
      | None -> print_endline rendered);
      `Ok ()
  | Ok (Serve.Protocol.Served s) -> print_served s
  | Ok (Serve.Protocol.Jobs _) ->
      Printf.eprintf "synth client: protocol error: unexpected jobs response\n";
      exit exit_unreachable

let client_cmd =
  let server =
    Arg.(
      required
      & opt (some string) None
      & info [ "server" ] ~docv:"SOCK"
          ~doc:"Unix socket of a running $(b,synth serve) daemon.")
  in
  let op =
    Arg.(
      value
      & opt
          (enum
             [
               ("synth", `Synth);
               ("lookup", `Lookup);
               ("stats", `Stats);
               ("shutdown", `Shutdown);
             ])
          `Synth
      & info [ "op" ] ~docv:"OP"
          ~doc:
            "Request to send: $(b,synth) (serve or synthesize), $(b,lookup) \
             (cache/registry probe only, never searches), $(b,stats) \
             (counter snapshot as JSON), or $(b,shutdown).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Total patience for this request, propagated to the server as \
             an absolute deadline: a request still queued when it passes \
             is shed server-side ('timed_out') instead of burning a \
             worker. Defaults to a deadline derived from $(b,--timeout) \
             when that is set.")
  in
  Cmd.v
    (Cmd.info "client" ~exits
       ~doc:
         "One request against a running synthesis daemon. Key flags (-n, \
          --engine, ...) mirror the default command; the response kernel \
          prints exactly as a local synthesis would print it. Exit code 5 \
          when the daemon is unreachable or the response is torn or \
          unparsable; otherwise the served status maps to the usual codes \
          (cached/synthesized 0, timed out 2, exhausted 3, shed by the \
          server — overloaded or circuit_open — 6, failed 1).")
    Term.(
      ret
        (const run_client $ server $ op $ n $ scratch $ engine $ heuristic
        $ cut $ max_len $ timeout_arg $ state_budget $ deadline
        $ optimize_flag $ stats_json $ fault_plan))

(* ------------------------------------------------------------------ *)

let cmd =
  Cmd.group ~default:default_term
    (Cmd.info "synth" ~exits
       ~doc:"Synthesize branchless sorting kernels (CGO'25 reproduction)")
    [
      batch_cmd;
      registry_cmd;
      serve_cmd;
      client_cmd;
      lint_cmd;
      analyze_cmd;
      devlint_cmd;
      certify_cmd;
      optimize_cmd;
      equiv_cmd;
    ]

let () = exit (Cmd.eval cmd)
