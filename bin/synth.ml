(* Command-line synthesizer: the repository's front door.

   Examples:
     synth -n 3                       fastest configuration, print the kernel
     synth -n 3 --x86                 render as x86-64 assembly
     synth -n 4 --engine level        certified-minimal search
     synth -n 3 --all --cut 2         enumerate all optimal kernels
     synth -n 3 --minmax              min/max (vector) kernel
     synth -n 3 --prove-none 10       show no shorter kernel exists
     synth -n 3 --pddl                emit the PDDL planning encoding
     synth -n 3 --stats-json -        dump the search-stats JSON snapshot *)

open Cmdliner

let dump_stats_json stats_json label r =
  match stats_json with
  | None -> ()
  | Some path ->
      let json = Search.stats_json ~label r ^ "\n" in
      if path = "-" then print_string json
      else begin
        match open_out path with
        | oc ->
            output_string oc json;
            close_out oc
        | exception Sys_error msg ->
            Printf.eprintf "synth: cannot write stats JSON: %s\n" msg;
            exit 1
      end

let run n minmax engine all cut heuristic max_len x86 prove_none pddl scratch
    stats_json =
  let cfg = Isa.Config.make ~n ~m:scratch in
  if pddl then begin
    print_string (Planning.Pddl.domain cfg);
    print_newline ();
    print_string (Planning.Pddl.problem cfg);
    `Ok ()
  end
  else if minmax then begin
    let opts =
      { Minmax.default with Minmax.all_solutions = all; max_len }
    in
    let r = Minmax.synthesize ~opts n in
    match r.Minmax.programs with
    | [] ->
        Printf.printf "no min/max kernel found\n";
        `Ok ()
    | p :: _ ->
        Printf.printf "# %d instructions, %d solutions, %.3f s, %d states\n"
          (Array.length p) r.Minmax.solution_count r.Minmax.elapsed
          r.Minmax.expanded;
        print_endline
          (if x86 then Minmax.Vexec.to_x86 cfg p else Minmax.Vexec.to_string cfg p);
        `Ok ()
  end
  else begin
    let heuristic =
      match heuristic with
      | "none" -> Search.No_heuristic
      | "perm" -> Search.Perm_count
      | "assign" -> Search.Assign_count
      | "dist" -> Search.Dist_bound
      | s -> invalid_arg (Printf.sprintf "unknown heuristic %S" s)
    in
    let opts =
      {
        Search.best with
        Search.engine = (if engine = "level" then Search.Level_sync else Search.Astar);
        heuristic;
        cut = (if cut <= 0. then Search.No_cut else Search.Mult cut);
        max_len;
        max_solutions = 50;
      }
    in
    let mode =
      match prove_none with
      | Some l -> Search.Prove_none l
      | None -> if all then Search.All_optimal else Search.Find_first
    in
    let r = Search.run_mode ~opts ~mode cfg in
    (match mode with
    | Search.Prove_none l ->
        Printf.printf
          (match r.Search.optimal_length with
          | None -> format_of_string "no kernel of length <= %d exists (%d states explored)\n"
          | Some _ -> format_of_string "a kernel of length <= %d exists! (%d states)\n")
          l r.Search.stats.Search.expanded
    | _ -> (
        match r.Search.programs with
        | [] -> Printf.printf "no kernel found\n"
        | p :: _ ->
            Printf.printf "# %d instructions, %d solutions, %.3f s, %d states\n"
              (Array.length p) r.Search.solution_count
              r.Search.stats.Search.elapsed r.Search.stats.Search.expanded;
            print_endline
              (if x86 then Isa.Program.to_x86 cfg p else Isa.Program.to_string cfg p);
            assert (Machine.Exec.sorts_all_permutations cfg p)));
    let label =
      Printf.sprintf "synth n=%d engine=%s" n
        (if engine = "level" then "level" else "astar")
    in
    dump_stats_json stats_json label r;
    `Ok ()
  end

let n =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Array length to sort (1-6).")

let minmax = Arg.(value & flag & info [ "minmax" ] ~doc:"Use the min/max vector ISA.")

let engine =
  Arg.(
    value
    & opt (enum [ ("astar", "astar"); ("level", "level") ]) "astar"
    & info [ "engine" ] ~doc:"Search engine: astar (fast) or level (certified minimal).")

let all = Arg.(value & flag & info [ "all" ] ~doc:"Enumerate all optimal kernels.")

let cut =
  Arg.(
    value & opt float 1.0
    & info [ "cut"; "k" ] ~docv:"K"
        ~doc:"Perm-count cut factor (Section 3.5); 0 disables the cut.")

let heuristic =
  Arg.(
    value
    & opt (enum [ ("none", "none"); ("perm", "perm"); ("assign", "assign"); ("dist", "dist") ]) "perm"
    & info [ "heuristic" ] ~doc:"A* heuristic: none, perm, assign, or dist.")

let max_len =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-len" ] ~docv:"L" ~doc:"Length bound for the search.")

let x86 = Arg.(value & flag & info [ "x86" ] ~doc:"Print x86-64 assembly.")

let prove_none =
  Arg.(
    value
    & opt (some int) None
    & info [ "prove-none" ] ~docv:"L"
        ~doc:"Exhaustively show that no kernel of length <= L exists.")

let pddl =
  Arg.(value & flag & info [ "pddl" ] ~doc:"Emit the PDDL domain and problem.")

let scratch =
  Arg.(value & opt int 1 & info [ "scratch"; "m" ] ~doc:"Scratch registers (default 1).")

let stats_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Dump a machine-readable JSON snapshot of the search statistics \
           (counters, timeline, per-level open/pruned breakdown) to $(docv), \
           or to stdout when $(docv) is '-'.")

let cmd =
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize branchless sorting kernels (CGO'25 reproduction)")
    Term.(
      ret
        (const run $ n $ minmax $ engine $ all $ cut $ heuristic $ max_len $ x86
        $ prove_none $ pddl $ scratch $ stats_json))

let () = exit (Cmd.eval cmd)
