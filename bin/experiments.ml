(* Regenerate the paper's tables and figures. With no arguments, runs every
   experiment at the default (seconds-scale) budgets; pass experiment ids
   (e1..e21) to select, and --full to lift the budget reductions. *)

open Cmdliner

let run list_only full out registry ids =
  (match out with
  | Some dir ->
      let files = Harness.Artifacts.write ?registry ~full dir in
      Printf.printf "wrote %d artifact files to %s:\n" (List.length files) dir;
      List.iter (fun f -> Printf.printf "  %s\n" f) files
  | None -> ());
  if list_only then begin
    List.iter
      (fun s ->
        Printf.printf "%-4s %-55s %s\n" s.Harness.Experiments.id
          s.Harness.Experiments.title s.Harness.Experiments.paper_ref)
      Harness.Experiments.all;
    `Ok ()
  end
  else
    match Harness.Experiments.run_ids ~full ids with
    | () -> `Ok ()
    | exception Invalid_argument m -> `Error (false, m)

let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.")

let full =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:
          "Lift budget reductions (full n=3 k=2 enumeration, n=5 synthesis, \
           bigger solver budgets). Expect tens of minutes.")

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e21).")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:
          "Also write artifact-style result files (solution dumps, tSNE \
           coordinates, PDDL and MiniZinc encodings) to $(docv).")

let registry =
  Arg.(
    value
    & opt (some string) None
    & info [ "registry" ] ~docv:"DIR"
        ~doc:
          "Serve single-kernel artifacts from (and populate) the kernel \
           registry rooted at $(docv) instead of re-running the searches.")

let cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Reproduce the tables and figures of 'Synthesis of Sorting Kernels' (CGO'25)")
    Term.(ret (const run $ list_only $ full $ out $ registry $ ids))

let () = exit (Cmd.eval cmd)
